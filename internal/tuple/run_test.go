package tuple

import (
	"encoding/binary"
	"math"
	"testing"

	"adaptdb/internal/value"
)

func TestFrameRoundTrip(t *testing.T) {
	rows := []Tuple{
		{value.NewInt(1), value.NewString("alpha"), value.NewFloat(1.5)},
		{value.NewInt(-7), value.NewString(""), value.NewFloat(math.Inf(1))},
		{value.Value{}, value.NewString("βγ"), value.NewFloat(math.NaN())},
		{value.NewDate(19000), value.NewString("tail"), value.NewFloat(-0.0)},
	}
	enc, err := AppendFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if len(got) != len(rows) {
		t.Fatalf("%d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		for c := range rows[i] {
			w, g := rows[i][c], got[i][c]
			if w.K != g.K {
				t.Fatalf("row %d col %d kind %v, want %v", i, c, g.K, w.K)
			}
			// Bit-exact floats (NaN, -0.0) survive the round trip.
			if w.K == value.Float {
				if math.Float64bits(w.F) != math.Float64bits(g.F) {
					t.Fatalf("row %d col %d float bits differ", i, c)
				}
				continue
			}
			if value.Compare(w, g) != 0 {
				t.Fatalf("row %d col %d = %v, want %v", i, c, g, w)
			}
		}
	}
}

func TestFrameEmptyAndZeroArity(t *testing.T) {
	enc, err := AppendFrame(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, n, err := DecodeFrame(enc)
	if err != nil || len(rows) != 0 || n != len(enc) {
		t.Fatalf("empty frame: rows=%d n=%d err=%v", len(rows), n, err)
	}
	// Zero-arity rows are a valid (degenerate) frame.
	enc, err = AppendFrame(nil, []Tuple{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err = DecodeFrame(enc)
	if err != nil || len(rows) != 2 || len(rows[0]) != 0 {
		t.Fatalf("zero-arity frame: rows=%v err=%v", rows, err)
	}
}

func TestFrameMixedArityRejected(t *testing.T) {
	_, err := AppendFrame(nil, []Tuple{
		{value.NewInt(1)},
		{value.NewInt(1), value.NewInt(2)},
	})
	if err == nil {
		t.Fatal("mixed-arity frame must be rejected")
	}
}

func TestFrameDecodeCorruptInput(t *testing.T) {
	rows := []Tuple{{value.NewInt(42), value.NewString("x")}}
	enc, err := AppendFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
	if _, _, err := DecodeFrame(nil); err == nil {
		t.Fatal("empty input must error")
	}
	// Implausible row×col product must be rejected, not allocated.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatal("giant frame header must be rejected")
	}
	// A header whose product wraps uint64 (nRows=1<<62, nCols=4) must
	// error, not defeat the guard and panic in the allocation.
	var wrap []byte
	wrap = binary.AppendUvarint(wrap, 1<<62)
	wrap = binary.AppendUvarint(wrap, 4)
	if _, _, err := DecodeFrame(wrap); err == nil {
		t.Fatal("overflowing frame header must be rejected")
	}
}

func TestFrameDecodedRowsAreClipped(t *testing.T) {
	rows := []Tuple{
		{value.NewInt(1), value.NewInt(2)},
		{value.NewInt(3), value.NewInt(4)},
	}
	enc, err := AppendFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Appending to a decoded row must not clobber its flat-array
	// neighbour.
	_ = append(got[0], value.NewInt(99))
	if got[1][0].Int64() != 3 {
		t.Fatal("append to decoded row clobbered the next row")
	}
}

func TestMemBytes(t *testing.T) {
	empty := Tuple{}
	if empty.MemBytes() != 24 {
		t.Errorf("empty tuple = %d, want 24 (slice header)", empty.MemBytes())
	}
	r := Tuple{value.NewInt(1), value.NewString("abcd")}
	if got := r.MemBytes(); got != 24+80+4 {
		t.Errorf("MemBytes = %d, want %d", got, 24+80+4)
	}
}

// FrameScratch reuse must produce the same rows as fresh decodes and
// must not allocate once warmed on string-free frames.
func TestFrameScratchReuse(t *testing.T) {
	frames := make([][]byte, 3)
	want := make([][]Tuple, 3)
	for f := range frames {
		rows := make([]Tuple, 5+f)
		for i := range rows {
			rows[i] = Tuple{
				value.NewInt(int64(f*100 + i)),
				value.NewString("s" + string(rune('a'+f))),
				value.NewFloat(float64(i) / 3),
			}
		}
		enc, err := AppendFrame(nil, rows)
		if err != nil {
			t.Fatal(err)
		}
		frames[f], want[f] = enc, rows
	}
	var sc FrameScratch
	for f, enc := range frames {
		got, n, err := sc.Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("frame %d: n=%d err=%v", f, n, err)
		}
		if len(got) != len(want[f]) {
			t.Fatalf("frame %d: %d rows, want %d", f, len(got), len(want[f]))
		}
		for i := range got {
			for c := range got[i] {
				if value.Compare(got[i][c], want[f][i][c]) != 0 {
					t.Fatalf("frame %d row %d col %d = %v, want %v",
						f, i, c, got[i][c], want[f][i][c])
				}
			}
		}
	}

	// Warmed scratch over an int-only frame decodes allocation-free.
	intRows := make([]Tuple, 64)
	for i := range intRows {
		intRows[i] = Tuple{value.NewInt(int64(i)), value.NewInt(int64(i * i))}
	}
	enc, err := AppendFrame(nil, intRows)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.Decode(enc); err != nil { // warm the storage
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := sc.Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed scratch decode of int frame: %v allocs/run, want 0", allocs)
	}
}

// String payloads decoded from one frame share a single backing copy of
// the frame bytes — one allocation per frame, not one per string.
func TestFrameStringPooling(t *testing.T) {
	rows := make([]Tuple, 100)
	for i := range rows {
		rows[i] = Tuple{value.NewString("payload-string-xxxxxxxxxxxxxxxx"), value.NewInt(int64(i))}
	}
	enc, err := AppendFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh-storage decode: flat values + row headers + one string pool.
	// Without pooling this would be ≥ 100 string allocations.
	allocs := testing.AllocsPerRun(20, func() {
		got, _, err := DecodeFrame(enc)
		if err != nil || len(got) != len(rows) {
			t.Fatalf("rows=%d err=%v", len(got), err)
		}
	})
	if allocs > 5 {
		t.Fatalf("DecodeFrame of 100-string frame: %v allocs/run, want ≤5 (pooled)", allocs)
	}
	got, _, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i][0].S != rows[i][0].S {
			t.Fatalf("row %d string = %q, want %q", i, got[i][0].S, rows[i][0].S)
		}
	}
}
