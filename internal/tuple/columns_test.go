package tuple

import (
	"bytes"
	"math"
	"testing"

	"adaptdb/internal/value"
)

// colRows builds a mixed-shape row set: int, float, string and date
// columns, with NULLs sprinkled into every column when nullEvery > 0.
func colRows(n, nullEvery int) []Tuple {
	rows := make([]Tuple, n)
	names := []string{"alpha", "bravo", "charlie", "", "delta-very-long-name-beyond-small"}
	for i := range rows {
		r := Tuple{
			value.NewInt(int64(i) % 97),
			value.NewFloat(float64(i) * 0.5),
			value.NewString(names[i%len(names)]),
			value.NewDate(int64(20000 + i)),
		}
		if nullEvery > 0 && i%nullEvery == 0 {
			r[i%len(r)] = value.Value{}
		}
		rows[i] = r
	}
	return rows
}

// eqRow fails the test when physical row i of c differs from want.
func eqRow(t *testing.T, c *Columns, i int, want Tuple) {
	t.Helper()
	for ci := range want {
		got := c.Value(ci, i)
		if value.Compare(got, want[ci]) != 0 {
			t.Fatalf("row %d col %d = %v, want %v", i, ci, got, want[ci])
		}
		if c.IsNull(ci, i) != want[ci].IsNull() {
			t.Fatalf("row %d col %d IsNull = %v, want %v", i, ci, c.IsNull(ci, i), want[ci].IsNull())
		}
	}
}

func TestColumnsAppendRowsMatchesAppendRow(t *testing.T) {
	// The bulk transpose and the per-row append must build identical
	// columns, including validity bitmaps past the 64-row word boundary.
	rows := colRows(300, 7)
	perRow := NewColumns(4)
	for _, r := range rows {
		perRow.AppendRow(r)
	}
	bulk := NewColumns(4)
	bulk.AppendRows(rows[:100])
	bulk.AppendRows(rows[100:])
	if perRow.FullLen() != len(rows) || bulk.FullLen() != len(rows) {
		t.Fatalf("lens: perRow=%d bulk=%d want %d", perRow.FullLen(), bulk.FullLen(), len(rows))
	}
	for i, r := range rows {
		eqRow(t, perRow, i, r)
		eqRow(t, bulk, i, r)
	}
	// Typed storage must have been kept (no silent demotion to boxed).
	for ci := 0; ci < 4; ci++ {
		if perRow.Col(ci).Boxed() != nil || bulk.Col(ci).Boxed() != nil {
			t.Fatalf("col %d demoted to boxed on homogeneous input", ci)
		}
	}
}

func TestColVecLeadingNullsAdopt(t *testing.T) {
	// A column whose first rows are all NULL adopts its kind late and
	// backfills; the bulk path must agree.
	rows := []Tuple{{value.Value{}}, {value.Value{}}, {value.NewInt(5)}, {value.Value{}}, {value.NewInt(9)}}
	for _, mode := range []string{"perRow", "bulk"} {
		c := NewColumns(1)
		if mode == "bulk" {
			c.AppendRows(rows)
		} else {
			for _, r := range rows {
				c.AppendRow(r)
			}
		}
		for i, r := range rows {
			eqRow(t, c, i, r)
		}
		if got := c.Col(0).Kind(); got != value.Int {
			t.Fatalf("%s: kind = %v, want Int", mode, got)
		}
	}
}

func TestColVecMixedKindDemotes(t *testing.T) {
	// Mixed kinds in one column are legal (dynamically typed tuples) and
	// demote to boxed storage without losing a value.
	rows := []Tuple{{value.NewInt(1)}, {value.NewString("two")}, {value.NewFloat(3.5)}, {value.Value{}}}
	for _, mode := range []string{"perRow", "bulk"} {
		c := NewColumns(1)
		if mode == "bulk" {
			c.AppendRows(rows)
		} else {
			for _, r := range rows {
				c.AppendRow(r)
			}
		}
		if c.Col(0).Boxed() == nil {
			t.Fatalf("%s: mixed-kind column did not demote", mode)
		}
		for i, r := range rows {
			eqRow(t, c, i, r)
		}
	}
}

func TestColumnsSelection(t *testing.T) {
	rows := colRows(10, 0)
	c := NewColumns(4)
	c.AppendRows(rows)
	if c.Len() != 10 || c.Sel() != nil {
		t.Fatalf("fresh set: Len=%d Sel=%v", c.Len(), c.Sel())
	}
	// FilterSel with no selection installed starts from all physical rows.
	c.FilterSel(func(i int) bool { return i%2 == 0 })
	if c.Len() != 5 || c.FullLen() != 10 {
		t.Fatalf("after even filter: Len=%d FullLen=%d", c.Len(), c.FullLen())
	}
	// Refining narrows in place without touching storage.
	c.FilterSel(func(i int) bool { return i >= 4 })
	want := []int32{4, 6, 8}
	sel := c.Sel()
	if len(sel) != len(want) {
		t.Fatalf("refined sel = %v, want %v", sel, want)
	}
	for k, i := range want {
		if sel[k] != i {
			t.Fatalf("refined sel = %v, want %v", sel, want)
		}
		eqRow(t, c, int(i), rows[i])
	}
	// RowTo and Value keep addressing PHYSICAL indices regardless of sel.
	got := c.RowTo(nil, 1)
	for ci := range got {
		if value.Compare(got[ci], rows[1][ci]) != 0 {
			t.Fatal("RowTo addressed a selected index, want physical")
		}
	}
}

func TestFilterSelToEmpty(t *testing.T) {
	// A filter that rejects every row must leave an EMPTY selection, not
	// a nil one — nil sel means "every row live", so a zero-survivor
	// filter on a fresh set silently un-filtering is a correctness bug.
	c := NewColumns(4)
	c.AppendRows(colRows(10, 0))
	c.FilterSel(func(int) bool { return false })
	if c.Sel() == nil {
		t.Fatal("reject-all filter left sel nil (= all rows live)")
	}
	if c.Len() != 0 {
		t.Fatalf("reject-all filter: Len=%d, want 0", c.Len())
	}
	// Filtering an already-empty selection stays empty.
	c.FilterSel(func(int) bool { return true })
	if c.Len() != 0 {
		t.Fatalf("filter over empty sel resurrected %d rows", c.Len())
	}
}

func TestAppendRowBinaryMatchesTuple(t *testing.T) {
	// The columnar checksum/wire encoding must be byte-identical to the
	// row path's Tuple.AppendBinary for every kind, NULLs included.
	rows := colRows(150, 5)
	rows = append(rows, Tuple{value.NewBool(true), value.NewFloat(math.Inf(-1)), value.NewString(""), value.Value{}})
	c := NewColumns(4)
	c.AppendRows(rows)
	// A boxed (mixed-kind) column must encode identically too.
	m := NewColumns(1)
	for i, r := range rows {
		if i%2 == 0 {
			m.AppendRow(Tuple{r[0]})
		} else {
			m.AppendRow(Tuple{r[2]})
		}
	}
	for i, r := range rows {
		if got, want := c.AppendRowBinary(nil, i), r.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Fatalf("row %d: columnar encoding %x, tuple encoding %x", i, got, want)
		}
		mr := Tuple{r[0]}
		if i%2 == 1 {
			mr = Tuple{r[2]}
		}
		if got, want := m.AppendRowBinary(nil, i), mr.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Fatalf("boxed row %d: columnar encoding %x, tuple encoding %x", i, got, want)
		}
	}
}

func TestHash64ColumnMatchesBoxed(t *testing.T) {
	// Vectorized column hashing must agree with Value.Hash64 on every
	// cell — including -0.0/NaN folding, NULLs, all-null columns and
	// boxed columns — or the two join paths would disagree on buckets.
	rows := colRows(200, 9)
	rows = append(rows,
		Tuple{value.NewInt(-1), value.NewFloat(math.Copysign(0, -1)), value.NewString("x"), value.Value{}},
		Tuple{value.NewInt(0), value.NewFloat(math.NaN()), value.NewString(""), value.NewDate(1)},
	)
	c := NewColumns(4)
	c.AppendRows(rows)
	var hv []uint64
	for ci := 0; ci < 4; ci++ {
		hv = c.Hash64Column(ci, hv)
		if len(hv) != len(rows) {
			t.Fatalf("col %d: %d hashes for %d rows", ci, len(hv), len(rows))
		}
		for i, r := range rows {
			if want := r[ci].Hash64(); hv[i] != want {
				t.Fatalf("col %d row %d (%v): hash %x, want %x", ci, i, r[ci], hv[i], want)
			}
		}
	}
	// All-null column: kindless storage, every hash is HashNull.
	an := NewColumns(1)
	for i := 0; i < 5; i++ {
		an.AppendRow(Tuple{value.Value{}})
	}
	for _, h := range an.Hash64Column(0, nil) {
		if h != value.HashNull {
			t.Fatalf("all-null column hashed %x, want %x", h, value.HashNull)
		}
	}
	// Boxed column: mixed kinds still hash like their boxed values.
	b := NewColumns(1)
	b.AppendRow(Tuple{value.NewInt(3)})
	b.AppendRow(Tuple{value.NewString("three")})
	bh := b.Hash64Column(0, nil)
	if bh[0] != value.NewInt(3).Hash64() || bh[1] != value.NewString("three").Hash64() {
		t.Fatal("boxed column hashes disagree with Value.Hash64")
	}
}

func TestColumnsGather(t *testing.T) {
	rows := colRows(64, 6)
	src := NewColumns(4)
	src.AppendRows(rows)
	idxs := []int32{63, 0, 7, 7, 12}
	dst := NewColumns(4)
	for ci := 0; ci < 4; ci++ {
		dst.AppendColumnGather(ci, src, ci, idxs)
	}
	dst.AddRows(len(idxs))
	if dst.FullLen() != len(idxs) {
		t.Fatalf("gathered %d rows, want %d", dst.FullLen(), len(idxs))
	}
	for k, i := range idxs {
		eqRow(t, dst, k, rows[i])
	}
	// AppendColumnValues: the row-shaped gather must agree.
	dv := NewColumns(4)
	for ci := 0; ci < 4; ci++ {
		dv.AppendColumnValues(ci, rows, ci, idxs)
	}
	dv.AddRows(len(idxs))
	for k, i := range idxs {
		eqRow(t, dv, k, rows[i])
	}
}

func TestAppendColumnsHonorsSelection(t *testing.T) {
	rows := colRows(20, 0)
	src := NewColumns(4)
	src.AppendRows(rows)
	src.SetSel([]int32{1, 3, 5})
	dst := NewColumns(4)
	dst.AppendColumns(src)
	if dst.FullLen() != 3 {
		t.Fatalf("appended %d rows, want 3", dst.FullLen())
	}
	for k, i := range []int{1, 3, 5} {
		eqRow(t, dst, k, rows[i])
	}
	// No selection: bulk concatenation path.
	dst2 := NewColumns(4)
	src.SetSel(nil)
	dst2.AppendColumns(src)
	if dst2.FullLen() != 20 {
		t.Fatalf("appended %d rows, want 20", dst2.FullLen())
	}
	for i, r := range rows {
		eqRow(t, dst2, i, r)
	}
}

func TestColumnsResetRecycles(t *testing.T) {
	c := NewColumns(2)
	c.AppendRows(colRows(100, 0)[:100])
	c.SetSel([]int32{1, 2})
	c.Reset(3)
	if c.NumCols() != 3 || c.FullLen() != 0 || c.Len() != 0 || c.Sel() != nil {
		t.Fatalf("after Reset: cols=%d full=%d len=%d sel=%v", c.NumCols(), c.FullLen(), c.Len(), c.Sel())
	}
	// The recycled set must accept a different shape cleanly.
	r := Tuple{value.NewString("s"), value.NewInt(1), value.NewFloat(2)}
	c.AppendRow(r)
	eqRow(t, c, 0, r)
	// reset clears string headers through the full backing capacity so a
	// pooled vector cannot pin stale payloads.
	v := c.Col(0)
	s := v.Strs()
	for i := len(s); i < cap(s); i++ {
		if s[:cap(s)][i] != "" {
			t.Fatal("reset left a stale string header in vector capacity")
		}
	}
}

func TestColumnsReserveAdoptsCapacity(t *testing.T) {
	c := NewColumns(2)
	c.Reserve(500)
	c.AppendRow(Tuple{value.NewInt(1), value.NewString("a")})
	if got := cap(c.Col(0).Ints()); got < 500 {
		t.Errorf("int vector adopted with cap %d, want >= 500", got)
	}
	if got := cap(c.Col(1).Strs()); got < 500 {
		t.Errorf("string vector adopted with cap %d, want >= 500", got)
	}
}

func TestMemBytesRowMatchesTuple(t *testing.T) {
	rows := colRows(50, 4)
	c := NewColumns(4)
	c.AppendRows(rows)
	for i, r := range rows {
		if got, want := c.MemBytesRow(i), r.MemBytes(); got != want {
			t.Fatalf("row %d: MemBytesRow=%d, Tuple.MemBytes=%d", i, got, want)
		}
	}
}
