// Package tuple defines rows (ordered lists of values) and their binary
// codec against a schema. Blocks in the distributed file system simulator
// store tuples in this encoding; the executor decodes them back when a
// scan or join task reads a block.
package tuple

import (
	"fmt"

	"adaptdb/internal/schema"
	"adaptdb/internal/value"
)

// Tuple is one row. Index i corresponds to schema column i.
type Tuple []value.Value

// Clone returns a deep-enough copy (values are immutable, so a slice copy
// suffices).
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Conforms checks that the tuple's arity and value kinds match the schema.
// Null values are accepted in any column.
func (t Tuple) Conforms(s *schema.Schema) error {
	if len(t) != s.NumCols() {
		return fmt.Errorf("tuple: arity %d does not match schema %s", len(t), s)
	}
	for i, v := range t {
		if v.K != value.Null && v.K != s.Kind(i) {
			return fmt.Errorf("tuple: column %d (%s) has kind %s, want %s",
				i, s.Name(i), v.K, s.Kind(i))
		}
	}
	return nil
}

// AppendBinary appends the tuple encoding to dst. Each value uses its own
// self-describing encoding; the schema fixes the arity at decode time.
func (t Tuple) AppendBinary(dst []byte) []byte {
	for _, v := range t {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// Decode decodes one tuple of s.NumCols() values from src, returning the
// tuple and bytes consumed.
func Decode(src []byte, s *schema.Schema) (Tuple, int, error) {
	t := make(Tuple, s.NumCols())
	pos := 0
	for i := range t {
		v, n, err := value.DecodeValue(src[pos:])
		if err != nil {
			return nil, 0, fmt.Errorf("tuple: column %d: %w", i, err)
		}
		t[i] = v
		pos += n
	}
	return t, pos, nil
}

// Views splits rows into contiguous sub-slices of at most size rows
// each, without copying: each view aliases rows' backing array (capped
// so appends cannot clobber the next view). The batched executor uses
// Views to stream an in-memory row set through a pipeline with zero
// per-row allocation.
func Views(rows []Tuple, size int) [][]Tuple {
	if len(rows) == 0 {
		return nil
	}
	if size <= 0 {
		size = 1
	}
	out := make([][]Tuple, 0, (len(rows)+size-1)/size)
	for start := 0; start < len(rows); start += size {
		end := start + size
		if end > len(rows) {
			end = len(rows)
		}
		out = append(out, rows[start:end:end])
	}
	return out
}

// Concat builds a wide tuple from two tuples, used for join outputs.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// arenaChunkValues is the value capacity of one Arena chunk: at 40 bytes
// per Value a chunk is ~320 KB, amortizing one allocation over a few
// hundred typical join-output rows.
const arenaChunkValues = 8192

// Arena batch-allocates join output rows: Concat carves each row out of
// a shared chunk instead of allocating per row, so a join emitting
// millions of rows pays one allocation per chunk rather than per row.
// Chunks are never reused — rows stay valid as long as they are
// referenced, and a chunk becomes garbage once its rows do.
//
// An Arena is not safe for concurrent use; parallel operators give each
// worker its own.
type Arena struct {
	buf Tuple // tail of the current chunk still open for carving
}

// Concat appends a‖b as one row carved from the arena. The returned
// tuple is capacity-clipped, so appending to it allocates instead of
// clobbering the neighbouring row.
func (ar *Arena) Concat(a, b Tuple) Tuple {
	n := len(a) + len(b)
	if n == 0 {
		return Tuple{}
	}
	if cap(ar.buf)-len(ar.buf) < n {
		size := arenaChunkValues
		if size < n {
			size = n
		}
		ar.buf = make(Tuple, 0, size)
	}
	off := len(ar.buf)
	ar.buf = append(ar.buf, a...)
	ar.buf = append(ar.buf, b...)
	return ar.buf[off : off+n : off+n]
}

// ConcatSchemas builds the join-output schema, prefixing column names to
// keep them unique across the two sides.
func ConcatSchemas(prefixA string, a *schema.Schema, prefixB string, b *schema.Schema) *schema.Schema {
	cols := make([]schema.Column, 0, a.NumCols()+b.NumCols())
	for i := 0; i < a.NumCols(); i++ {
		cols = append(cols, schema.Column{Name: prefixA + "." + a.Name(i), Kind: a.Kind(i)})
	}
	for i := 0; i < b.NumCols(); i++ {
		cols = append(cols, schema.Column{Name: prefixB + "." + b.Name(i), Kind: b.Kind(i)})
	}
	return schema.MustNew(cols...)
}
