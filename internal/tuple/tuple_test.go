package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptdb/internal/schema"
	"adaptdb/internal/value"
)

var testSchema = schema.MustNew(
	schema.Column{Name: "id", Kind: value.Int},
	schema.Column{Name: "price", Kind: value.Float},
	schema.Column{Name: "name", Kind: value.String},
	schema.Column{Name: "day", Kind: value.Date},
)

func mkTuple(id int64, price float64, name string, day int64) Tuple {
	return Tuple{value.NewInt(id), value.NewFloat(price), value.NewString(name), value.NewDate(day)}
}

func TestConforms(t *testing.T) {
	good := mkTuple(1, 2.5, "x", 100)
	if err := good.Conforms(testSchema); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	short := Tuple{value.NewInt(1)}
	if err := short.Conforms(testSchema); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	wrongKind := Tuple{value.NewString("no"), value.NewFloat(1), value.NewString("x"), value.NewDate(1)}
	if err := wrongKind.Conforms(testSchema); err == nil {
		t.Errorf("kind mismatch accepted")
	}
	withNull := Tuple{value.NewInt(1), {}, value.NewString("x"), value.NewDate(1)}
	if err := withNull.Conforms(testSchema); err != nil {
		t.Errorf("null column rejected: %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := mkTuple(1, 1, "a", 1)
	b := a.Clone()
	b[0] = value.NewInt(99)
	if a[0].Int64() != 1 {
		t.Errorf("Clone aliases original")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := mkTuple(42, 3.75, "hello", 9000)
	buf := in.AppendBinary(nil)
	out, n, err := Decode(buf, testSchema)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("Decode consumed %d of %d", n, len(buf))
	}
	for i := range in {
		if value.Compare(in[i], out[i]) != 0 {
			t.Errorf("col %d: got %v want %v", i, out[i], in[i])
		}
	}
}

func TestDecodeMultiple(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tuples []Tuple
	var buf []byte
	for i := 0; i < 50; i++ {
		tp := mkTuple(rng.Int63n(1000), rng.Float64()*100, "n", rng.Int63n(10000))
		tuples = append(tuples, tp)
		buf = tp.AppendBinary(buf)
	}
	pos := 0
	for i, want := range tuples {
		got, n, err := Decode(buf[pos:], testSchema)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		pos += n
		for c := range want {
			if value.Compare(got[c], want[c]) != 0 {
				t.Fatalf("tuple %d col %d mismatch", i, c)
			}
		}
	}
	if pos != len(buf) {
		t.Fatalf("trailing bytes")
	}
}

func TestDecodeTruncated(t *testing.T) {
	in := mkTuple(42, 3.75, "hello", 9000)
	buf := in.AppendBinary(nil)
	if _, _, err := Decode(buf[:len(buf)-3], testSchema); err == nil {
		t.Errorf("truncated input accepted")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(id int64, price float64, name string, day int64) bool {
		in := mkTuple(id, price, name, day)
		buf := in.AppendBinary(nil)
		out, n, err := Decode(buf, testSchema)
		if err != nil || n != len(buf) {
			return false
		}
		for i := range in {
			if in[i].K == value.Float {
				if in[i].F != out[i].F && !(in[i].F != in[i].F && out[i].F != out[i].F) {
					return false
				}
				continue
			}
			if value.Compare(in[i], out[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := Tuple{value.NewInt(1), value.NewInt(2)}
	b := Tuple{value.NewString("x")}
	c := Concat(a, b)
	if len(c) != 3 || c[2].Str() != "x" {
		t.Errorf("Concat wrong: %v", c)
	}
	// Mutating output must not alias inputs.
	c[0] = value.NewInt(9)
	if a[0].Int64() != 1 {
		t.Errorf("Concat aliases input")
	}
}

func TestConcatSchemas(t *testing.T) {
	a := schema.MustNew(schema.Column{Name: "k", Kind: value.Int})
	b := schema.MustNew(schema.Column{Name: "k", Kind: value.Float})
	j := ConcatSchemas("l", a, "r", b)
	if j.NumCols() != 2 {
		t.Fatalf("NumCols = %d", j.NumCols())
	}
	if j.Index("l.k") != 0 || j.Index("r.k") != 1 {
		t.Errorf("prefixed names wrong: %s", j)
	}
}

func TestViews(t *testing.T) {
	rows := make([]Tuple, 10)
	for i := range rows {
		rows[i] = mkTuple(int64(i), 0, "v", 1)
	}
	views := Views(rows, 4)
	if len(views) != 3 {
		t.Fatalf("Views(10, 4) produced %d views, want 3", len(views))
	}
	total := 0
	for vi, v := range views {
		if vi < len(views)-1 && len(v) != 4 {
			t.Errorf("view %d has %d rows, want 4", vi, len(v))
		}
		for _, r := range v {
			if r[0].Int64() != int64(total) {
				t.Errorf("view row out of order: got id %d, want %d", r[0].Int64(), total)
			}
			total++
		}
		if len(v) > 0 && &v[0][0] != &rows[total-len(v)][0] {
			t.Errorf("view %d copies rows, want alias", vi)
		}
		if cap(v) != len(v) {
			t.Errorf("view %d cap %d > len %d — append could clobber the next view", vi, cap(v), len(v))
		}
	}
	if total != len(rows) {
		t.Errorf("views cover %d rows, want %d", total, len(rows))
	}
}

func TestViewsEdgeCases(t *testing.T) {
	if Views(nil, 4) != nil {
		t.Errorf("Views(nil) should be nil")
	}
	rows := []Tuple{mkTuple(1, 0, "a", 1), mkTuple(2, 0, "b", 1)}
	if got := Views(rows, 0); len(got) != 2 {
		t.Errorf("Views with size 0 should clamp to 1 row per view, got %d views", len(got))
	}
	if got := Views(rows, 100); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("oversized view split wrong: %d views", len(got))
	}
}

func TestArenaConcatMatchesConcat(t *testing.T) {
	var ar Arena
	a := Tuple{value.NewInt(1), value.NewString("x")}
	b := Tuple{value.NewFloat(2.5)}
	got := ar.Concat(a, b)
	want := Concat(a, b)
	if len(got) != len(want) {
		t.Fatalf("arena concat arity %d, want %d", len(got), len(want))
	}
	for i := range want {
		if value.Compare(got[i], want[i]) != 0 {
			t.Errorf("column %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestArenaRowsDoNotAlias(t *testing.T) {
	// Consecutive rows share a chunk but must not overlap, and appending
	// to one row must not clobber the next (capacity-clipped slices).
	var ar Arena
	r1 := ar.Concat(Tuple{value.NewInt(1)}, Tuple{value.NewInt(2)})
	r2 := ar.Concat(Tuple{value.NewInt(3)}, Tuple{value.NewInt(4)})
	_ = append(r1, value.NewInt(99)) // must reallocate, not overwrite r2
	if r2[0].Int64() != 3 || r2[1].Int64() != 4 {
		t.Fatalf("appending to row 1 corrupted row 2: %v", r2)
	}
	r1[0] = value.NewInt(77)
	if r2[0].Int64() != 3 {
		t.Fatalf("rows alias the same cells")
	}
}

func TestArenaChunkRollover(t *testing.T) {
	// Rows written before a chunk rolls over must survive the rollover.
	var ar Arena
	wide := make(Tuple, 100)
	for i := range wide {
		wide[i] = value.NewInt(int64(i))
	}
	var rows []Tuple
	for i := 0; i < 300; i++ { // 300 × 200 values ≫ one chunk
		rows = append(rows, ar.Concat(wide, wide))
	}
	for i, r := range rows {
		if len(r) != 200 || r[0].Int64() != 0 || r[199].Int64() != 99 {
			t.Fatalf("row %d corrupted after rollover", i)
		}
	}
}

func TestArenaOversizedRow(t *testing.T) {
	// A single row wider than the chunk size gets its own chunk.
	var ar Arena
	big := make(Tuple, 9000)
	for i := range big {
		big[i] = value.NewInt(int64(i))
	}
	r := ar.Concat(big, big)
	if len(r) != 18000 || r[17999].Int64() != 8999 {
		t.Fatalf("oversized row mangled")
	}
	// And the arena keeps working afterwards.
	small := ar.Concat(Tuple{value.NewInt(5)}, nil)
	if len(small) != 1 || small[0].Int64() != 5 {
		t.Fatalf("arena broken after oversized row")
	}
}
