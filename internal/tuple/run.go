// Run-file serialization: the columnar frame codec spilled join
// partitions are persisted with (internal/exec/spill.go). A frame packs
// a bounded group of same-arity rows column-major — uvarint row count,
// uvarint column count, then every value of column 0, column 1, … —
// each value in its existing self-describing binary encoding. Column-
// major layout groups same-kind bytes together (strings with strings,
// varints with varints), which is what makes run files compress well on
// real systems; here it keeps the format honest to its name while
// reusing the exact codec blocks already use.
package tuple

import (
	"encoding/binary"
	"fmt"

	"adaptdb/internal/value"
)

// AppendFrame appends a columnar frame encoding rows to dst and returns
// the extended slice. All rows must share one arity; an empty rows
// slice encodes a valid empty frame.
func AppendFrame(dst []byte, rows []Tuple) ([]byte, error) {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("tuple: frame row %d has arity %d, want %d", i, len(r), cols)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	dst = binary.AppendUvarint(dst, uint64(cols))
	for c := 0; c < cols; c++ {
		for _, r := range rows {
			dst = r[c].AppendBinary(dst)
		}
	}
	return dst, nil
}

// frameLimit bounds the row×column product a single decoded frame may
// claim, so a corrupt length prefix cannot drive a giant allocation.
const frameLimit = 1 << 24

// DecodeFrame decodes one frame from src, returning the rows and the
// bytes consumed. Row storage is carved from one flat allocation per
// frame; the returned tuples alias it but are capacity-clipped, so
// appending to one allocates instead of clobbering its neighbour.
// String payloads share one string copy of the frame bytes, so
// retaining any single value keeps the whole frame's strings alive —
// the right trade for run-file frames, which are loaded into tables
// wholesale or dropped wholesale.
func DecodeFrame(src []byte) ([]Tuple, int, error) {
	return decodeFrame(src, nil)
}

// FrameScratch carries reusable decode storage for callers that drop
// every row before decoding the next frame — the streamed side of a
// spilled-partition join, where rows are probed and forgotten. Reuse
// makes that path allocation-free for string-less rows.
type FrameScratch struct {
	flat Tuple
	rows []Tuple
}

// Decode is DecodeFrame over the scratch's storage. The returned rows
// are valid only until the next Decode on the same scratch.
func (s *FrameScratch) Decode(src []byte) ([]Tuple, int, error) {
	return decodeFrame(src, s)
}

func decodeFrame(src []byte, s *FrameScratch) ([]Tuple, int, error) {
	nRows, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: frame: bad row count")
	}
	pos := n
	nCols, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: frame: bad column count")
	}
	pos += n
	// Bound each factor before multiplying: a corrupt header like
	// nRows=1<<62 would overflow the product past the guard and panic
	// in the allocation below instead of erroring.
	if nRows > frameLimit || nCols > frameLimit || nRows*nCols > frameLimit {
		return nil, 0, fmt.Errorf("tuple: frame: implausible size %d×%d", nRows, nCols)
	}
	if nRows == 0 {
		return nil, pos, nil
	}
	nVals := int(nRows * nCols)
	// Every encoded value takes at least one byte, so a frame claiming
	// more values than it has bytes left is corrupt. Checking before the
	// allocation bounds decode memory by the input length — a 20-byte
	// frame with a fabricated 16M-value header allocates nothing, where
	// the frameLimit guard alone would let it claim ~640MB of Tuple
	// storage before the value decode loop failed.
	if nVals > len(src)-pos {
		return nil, 0, fmt.Errorf("tuple: frame: %d values claimed in %d remaining bytes", nVals, len(src)-pos)
	}
	var flat Tuple
	var rows []Tuple
	if s != nil {
		if cap(s.flat) < nVals {
			s.flat = make(Tuple, nVals)
		}
		if cap(s.rows) < int(nRows) {
			s.rows = make([]Tuple, nRows)
		}
		flat, rows = s.flat[:nVals], s.rows[:nRows]
	} else {
		flat = make(Tuple, nVals)
		rows = make([]Tuple, nRows)
	}
	// One string copy of the frame backs every string payload
	// (DecodeValuePooled); created lazily so all-numeric frames pay
	// nothing. pool[i] corresponds to src[i], making offset slicing
	// valid at any position.
	pool := ""
	for c := 0; c < int(nCols); c++ {
		for r := 0; r < int(nRows); r++ {
			if pool == "" && pos < len(src) && value.Kind(src[pos]) == value.String {
				pool = string(src)
			}
			var vpool string
			if pool != "" {
				vpool = pool[pos:]
			}
			v, vn, err := value.DecodeValuePooled(src[pos:], vpool)
			if err != nil {
				return nil, 0, fmt.Errorf("tuple: frame: row %d col %d: %w", r, c, err)
			}
			flat[r*int(nCols)+c] = v
			pos += vn
		}
	}
	for r := range rows {
		off := r * int(nCols)
		rows[r] = flat[off : off+int(nCols) : off+int(nCols)]
	}
	return rows, pos, nil
}

// MemBytes estimates the in-memory footprint of the tuple: the slice
// header, each value's fixed struct size, and string payloads. The
// executor's MemBudget charges this per retained row — cheap, stable
// across runs, and close enough for spill decisions.
func (t Tuple) MemBytes() int {
	n := 24 + 40*len(t)
	for _, v := range t {
		n += len(v.S)
	}
	return n
}
