// Fuzz + hardening coverage for the run-frame wire decode — the bytes
// internal/net ships between node processes, so any input a socket can
// deliver (truncated, oversized-length, bit-flipped) must come back as
// an error: never a panic, never an allocation beyond the input's own
// size. The fuzz target cross-checks the allocating and scratch decode
// paths against each other; the regression tests pin the specific
// corrupt shapes the guards exist for.
package tuple

import (
	"bytes"
	"encoding/binary"
	"testing"

	"adaptdb/internal/value"
)

// frameOf encodes rows, failing the test on arity errors.
func frameOf(t *testing.T, rows []Tuple) []byte {
	t.Helper()
	b, err := AppendFrame(nil, rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sampleRows() []Tuple {
	return []Tuple{
		{value.NewInt(1), value.NewString("alpha"), value.NewFloat(1.5)},
		{value.NewInt(-7), value.NewString(""), value.Value{}},
		{value.NewInt(1 << 40), value.NewString("Σωκράτης"), value.NewFloat(-1e300)},
	}
}

func FuzzDecodeFrame(f *testing.F) {
	// Seed with valid frames (empty, numeric, string-bearing) and the
	// corrupt shapes the guards target.
	empty, _ := AppendFrame(nil, nil)
	f.Add(empty)
	if b, err := AppendFrame(nil, sampleRows()); err == nil {
		f.Add(b)
		f.Add(b[:len(b)/2]) // truncated mid-values
		flip := bytes.Clone(b)
		flip[len(flip)/3] ^= 0x80 // bit-flipped
		f.Add(flip)
	}
	// Oversized-length headers: huge row count, huge product, row count
	// that overflows int64 multiplication.
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<24), 1<<24))
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<62), 4))
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, 1<<20), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, n, err := DecodeFrame(data)
		var s FrameScratch
		sRows, sn, sErr := s.Decode(data)

		// The two decode paths must agree on outcome.
		if (err == nil) != (sErr == nil) {
			t.Fatalf("decode disagreement: alloc err=%v scratch err=%v", err, sErr)
		}
		if err != nil {
			return
		}
		if n != sn || len(rows) != len(sRows) {
			t.Fatalf("decode divergence: (%d rows, %d bytes) vs scratch (%d rows, %d bytes)",
				len(rows), n, len(sRows), sn)
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		for i := range rows {
			a := rows[i].AppendBinary(nil)
			b := sRows[i].AppendBinary(nil)
			if !bytes.Equal(a, b) {
				t.Fatalf("row %d differs between decode paths", i)
			}
		}
		// Successful decodes must round-trip semantically: re-encoding the
		// rows and decoding again yields the same rows. (Byte identity is
		// too strong — the header varints accept non-minimal encodings,
		// e.g. 0x80 0x00 for zero.)
		re, err := AppendFrame(nil, rows)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		rows2, n2, err := DecodeFrame(re)
		if err != nil || n2 != len(re) || len(rows2) != len(rows) {
			t.Fatalf("round-trip decode: rows=%d/%d n=%d/%d err=%v", len(rows2), len(rows), n2, len(re), err)
		}
		for i := range rows {
			if !bytes.Equal(rows[i].AppendBinary(nil), rows2[i].AppendBinary(nil)) {
				t.Fatalf("round-trip row %d differs", i)
			}
		}
	})
}

// TestDecodeFrameCorruptRegressions pins the corrupt-input classes the
// decode guards exist for: every case must return an error without
// panicking, and the size-claim guard must fire before any allocation
// proportional to the claim.
func TestDecodeFrameCorruptRegressions(t *testing.T) {
	valid := frameOf(t, sampleRows())
	cases := []struct {
		name string
		src  []byte
	}{
		{"empty input", nil},
		{"row count only", binary.AppendUvarint(nil, 3)},
		{"truncated header varint", []byte{0xff}},
		{"truncated mid-values", valid[:len(valid)-3]},
		{"truncated to header", valid[:2]},
		{"huge row count", binary.AppendUvarint(binary.AppendUvarint(nil, 1<<62), 4)},
		{"huge column count", binary.AppendUvarint(binary.AppendUvarint(nil, 4), 1<<62)},
		{"product over limit", binary.AppendUvarint(binary.AppendUvarint(nil, 1<<13), 1<<13)},
		// Within frameLimit but claiming far more values than bytes: the
		// allocation-bound guard, not the product guard, rejects these.
		{"claim exceeds input", binary.AppendUvarint(binary.AppendUvarint(nil, 1<<20), 8)},
		{"claim exceeds remaining", append(binary.AppendUvarint(binary.AppendUvarint(nil, 1000), 2), byte(value.Null))},
		{"bad value kind", append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), 0x7f)},
		{"short float payload", append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), byte(value.Float), 1, 2)},
		{"string length past end", append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), byte(value.String), 0xff, 0x01, 'x')},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeFrame(tc.src); err == nil {
				t.Errorf("DecodeFrame(%x) succeeded, want error", tc.src)
			}
			var s FrameScratch
			if _, _, err := s.Decode(tc.src); err == nil {
				t.Errorf("scratch Decode(%x) succeeded, want error", tc.src)
			}
		})
	}
}

// TestDecodeFrameAllocationBounded proves the hardening claim directly:
// a tiny input with a fabricated multi-million-value header must not
// allocate value storage proportional to the claim. 16M claimed values
// would be ~640MB of Tuple storage; the whole decode must stay under a
// megabyte.
func TestDecodeFrameAllocationBounded(t *testing.T) {
	src := binary.AppendUvarint(binary.AppendUvarint(nil, 1<<22), 4)
	src = append(src, make([]byte, 16)...)
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := DecodeFrame(src); err == nil {
			t.Fatal("corrupt frame decoded")
		}
	})
	// The error path formats one error; a handful of allocations, never
	// the flat value slab.
	if allocs > 8 {
		t.Errorf("corrupt-header decode made %.0f allocations, want a handful", allocs)
	}
}

// TestDecodeFrameBitFlipSweep flips every bit of a valid frame one at a
// time: each mutation must either decode cleanly (flips inside value
// payloads can still be valid encodings) or return an error — never
// panic, never read out of bounds (the race/asan builds would catch
// it), and never consume more bytes than provided.
func TestDecodeFrameBitFlipSweep(t *testing.T) {
	orig := frameOf(t, sampleRows())
	buf := bytes.Clone(orig)
	for i := 0; i < len(buf)*8; i++ {
		buf[i/8] ^= 1 << (i % 8)
		rows, n, err := DecodeFrame(buf)
		if err == nil {
			if n > len(buf) {
				t.Fatalf("bit %d: consumed %d of %d bytes", i, n, len(buf))
			}
			_ = rows
		}
		buf[i/8] ^= 1 << (i % 8)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("sweep corrupted the buffer")
	}
}
