package schema

import (
	"testing"

	"adaptdb/internal/value"
)

func lineitemish() *Schema {
	return MustNew(
		Column{"orderkey", value.Int},
		Column{"partkey", value.Int},
		Column{"quantity", value.Float},
		Column{"shipdate", value.Date},
		Column{"shipmode", value.String},
	)
}

func TestNewValid(t *testing.T) {
	s := lineitemish()
	if s.NumCols() != 5 {
		t.Fatalf("NumCols = %d, want 5", s.NumCols())
	}
	if s.Index("partkey") != 1 {
		t.Errorf("Index(partkey) = %d, want 1", s.Index("partkey"))
	}
	if s.Index("nope") != -1 {
		t.Errorf("Index(nope) = %d, want -1", s.Index("nope"))
	}
	if s.Name(3) != "shipdate" || s.Kind(3) != value.Date {
		t.Errorf("Col 3 wrong: %v %v", s.Name(3), s.Kind(3))
	}
	if s.Col(4).Name != "shipmode" {
		t.Errorf("Col(4) wrong")
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New(Column{"a", value.Int}, Column{"a", value.Float}); err == nil {
		t.Errorf("duplicate column accepted")
	}
}

func TestNewRejectsEmptyName(t *testing.T) {
	if _, err := New(Column{"", value.Int}); err == nil {
		t.Errorf("empty column name accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustNew should panic on bad schema")
		}
	}()
	MustNew(Column{"x", value.Int}, Column{"x", value.Int})
}

func TestMustIndexPanics(t *testing.T) {
	s := lineitemish()
	defer func() {
		if recover() == nil {
			t.Errorf("MustIndex should panic on missing column")
		}
	}()
	s.MustIndex("missing")
}

func TestColsIsCopy(t *testing.T) {
	s := lineitemish()
	cols := s.Cols()
	cols[0].Name = "mutated"
	if s.Name(0) != "orderkey" {
		t.Errorf("Cols() exposed internal state")
	}
}

func TestEqual(t *testing.T) {
	a, b := lineitemish(), lineitemish()
	if !a.Equal(b) {
		t.Errorf("identical schemas not Equal")
	}
	c := MustNew(Column{"orderkey", value.Int})
	if a.Equal(c) {
		t.Errorf("different schemas Equal")
	}
	d := MustNew(
		Column{"orderkey", value.Int},
		Column{"partkey", value.Float}, // kind differs
		Column{"quantity", value.Float},
		Column{"shipdate", value.Date},
		Column{"shipmode", value.String},
	)
	if a.Equal(d) {
		t.Errorf("kind mismatch not detected")
	}
}

func TestString(t *testing.T) {
	s := MustNew(Column{"a", value.Int}, Column{"b", value.String})
	if got := s.String(); got != "(a:int, b:string)" {
		t.Errorf("String() = %q", got)
	}
}
