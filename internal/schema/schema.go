// Package schema describes table layouts: ordered, typed columns with
// name-based lookup. Schemas are immutable after construction and shared
// freely between blocks, partitioning trees and the executor.
package schema

import (
	"fmt"
	"strings"

	"adaptdb/internal/value"
)

// Column is a single typed column.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns with O(1) name lookup.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// New builds a schema from the given columns. Duplicate or empty names
// are rejected because partitioning trees address columns by name when
// serialized.
func New(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustNew is New for statically known schemas; it panics on error.
func MustNew(cols ...Column) *Schema {
	s, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Cols returns a copy of the column list.
func (s *Schema) Cols() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics if the column does not exist; used where
// the schema is statically known (workload generators, query templates).
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("schema: no column %q in %s", name, s))
	}
	return i
}

// Name returns the i-th column name.
func (s *Schema) Name(i int) string { return s.cols[i].Name }

// Kind returns the i-th column kind.
func (s *Schema) Kind(i int) value.Kind { return s.cols[i].Kind }

// String renders "name:kind, ..." for logs.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.NumCols() != o.NumCols() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}
