package planner

import (
	"fmt"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
)

// Node is a query-plan node: either Scan or Join.
type Node interface{ width() int }

// Scan reads one table with predicate pushdown.
type Scan struct {
	Table *core.Table
	Preds []predicate.Predicate
}

func (s *Scan) width() int { return s.Table.Schema.NumCols() }

// Join joins two sub-plans on the given column indexes of their output
// rows (left columns first in the output).
type Join struct {
	Left, Right Node
	LCol, RCol  int
}

func (j *Join) width() int { return j.Left.width() + j.Right.width() }

// Strategy names used in reports.
const (
	StratHyper       = "hyper"
	StratShuffle     = "shuffle"
	StratCombination = "combination"
	StratSemiShuffle = "semi-shuffle"
)

// JoinReport describes how one join in the plan was executed.
type JoinReport struct {
	Strategy    string
	CHyJ        float64
	ProbeBlocks int
	OutputRows  int
}

// Report aggregates the per-join reports for a plan run.
type Report struct {
	Joins []JoinReport
}

// Runner executes plans against one executor.
type Runner struct {
	Ex    *exec.Executor
	Model cluster.CostModel
	// BudgetBlocks is the hyper-join memory budget in blocks (Fig. 14
	// sweeps it; default 4).
	BudgetBlocks int
	// ForceShuffle disables hyper-join entirely (the "AdaptDB w/ Shuffle
	// Join" and baseline configurations).
	ForceShuffle bool
}

// NewRunner builds a plan runner with the default budget.
func NewRunner(ex *exec.Executor, model cluster.CostModel) *Runner {
	return &Runner{Ex: ex, Model: model, BudgetBlocks: 4}
}

func (r *Runner) budget() int {
	if r.BudgetBlocks > 0 {
		return r.BudgetBlocks
	}
	return 4
}

// Run executes a plan, returning the result rows and a report of join
// strategies used.
func (r *Runner) Run(n Node) ([]tuple.Tuple, *Report, error) {
	rep := &Report{}
	rows, err := r.run(n, rep)
	return rows, rep, err
}

func (r *Runner) run(n Node, rep *Report) ([]tuple.Tuple, error) {
	switch nd := n.(type) {
	case *Scan:
		return r.Ex.Scan(nd.Table, nd.Preds), nil
	case *Join:
		return r.runJoin(nd, rep)
	default:
		return nil, fmt.Errorf("planner: unknown node %T", n)
	}
}

func (r *Runner) runJoin(j *Join, rep *Report) ([]tuple.Tuple, error) {
	lScan, lIsScan := j.Left.(*Scan)
	rScan, rIsScan := j.Right.(*Scan)
	switch {
	case lIsScan && rIsScan:
		rows, jr := r.joinTables(lScan, j.LCol, rScan, j.RCol)
		jr.OutputRows = len(rows)
		rep.Joins = append(rep.Joins, jr)
		return rows, nil
	case rIsScan:
		lRows, err := r.run(j.Left, rep)
		if err != nil {
			return nil, err
		}
		rows, jr := r.semiShuffleJoin(lRows, j.LCol, rScan, j.RCol, false)
		jr.OutputRows = len(rows)
		rep.Joins = append(rep.Joins, jr)
		return rows, nil
	case lIsScan:
		rRows, err := r.run(j.Right, rep)
		if err != nil {
			return nil, err
		}
		rows, jr := r.semiShuffleJoin(rRows, j.RCol, lScan, j.LCol, true)
		jr.OutputRows = len(rows)
		rep.Joins = append(rep.Joins, jr)
		return rows, nil
	default:
		lRows, err := r.run(j.Left, rep)
		if err != nil {
			return nil, err
		}
		rRows, err := r.run(j.Right, rep)
		if err != nil {
			return nil, err
		}
		rows := r.Ex.ShuffleJoinIntermediates(lRows, rRows, j.LCol, j.RCol)
		rep.Joins = append(rep.Joins, JoinReport{Strategy: StratShuffle, OutputRows: len(rows)})
		return rows, nil
	}
}

// refRows sums the row counts of a ref set.
func refRows(refs []core.BlockRef) int {
	n := 0
	for _, ref := range refs {
		n += ref.Meta.Count
	}
	return n
}

// estimateHyper prices a hyper-join schedule: build rows once plus the
// planned probe rows from the bottom-up grouping (§5.4's "compute the
// schedule of blocks to read and count the total number of block
// reads").
func (r *Runner) estimateHyper(rRefs []core.BlockRef, rCol int, sRefs []core.BlockRef, sCol int) float64 {
	if len(rRefs) == 0 || len(sRefs) == 0 {
		return 0
	}
	plan := exec.PlanHyper(rRefs, rCol, sRefs, sCol, r.budget())
	build := float64(refRows(rRefs))
	probe := 0.0
	for _, gi := range plan.ProbeIdx {
		probe += float64(sRefs[gi].Meta.Count)
	}
	return build + probe
}

// estimateShuffle prices a shuffle join with eq. 1: CSJ per row on both
// sides.
func (r *Runner) estimateShuffle(rRefs, sRefs []core.BlockRef) float64 {
	return r.Model.CSJ * float64(refRows(rRefs)+refRows(sRefs))
}

// joinTables executes a base-table join with the three-case logic.
func (r *Runner) joinTables(l *Scan, lCol int, rt *Scan, rCol int) ([]tuple.Tuple, JoinReport) {
	lIdx := l.Table.TreeFor(lCol)
	rIdx := rt.Table.TreeFor(rCol)

	if r.ForceShuffle || lIdx < 0 || rIdx < 0 {
		// Case 3: no co-partitioning. Consider opportunistic hyper-join
		// over whatever trees exist (zone maps may still be tight).
		if !r.ForceShuffle {
			lRefs := l.Table.AllRefs(l.Preds)
			rRefs := rt.Table.AllRefs(rt.Preds)
			if hy := r.estimateHyper(lRefs, lCol, rRefs, rCol); hy > 0 && hy < r.estimateShuffle(lRefs, rRefs) {
				rows, stats := r.Ex.HyperJoin(lRefs, l.Preds, lCol, rRefs, rt.Preds, rCol, r.budget())
				return rows, JoinReport{Strategy: StratHyper, CHyJ: stats.CHyJ, ProbeBlocks: stats.ProbeBlocks}
			}
		}
		rows := r.Ex.ShuffleJoinTables(l.Table, l.Preds, lCol, rt.Table, rt.Preds, rCol)
		return rows, JoinReport{Strategy: StratShuffle}
	}

	// Split each side into the co-partitioned portion (the tree on the
	// join attribute) and the residual portion (all other live trees).
	l1 := l.Table.Refs(lIdx, l.Preds)
	var l2 []core.BlockRef
	for _, i := range l.Table.LiveTrees() {
		if i != lIdx {
			l2 = append(l2, l.Table.Refs(i, l.Preds)...)
		}
	}
	r1 := rt.Table.Refs(rIdx, rt.Preds)
	var r2 []core.BlockRef
	for _, i := range rt.Table.LiveTrees() {
		if i != rIdx {
			r2 = append(r2, rt.Table.Refs(i, rt.Preds)...)
		}
	}

	// Orient the hyper-join: build on the smaller co-partitioned side.
	flip := refRows(r1) < refRows(l1)

	// Case 1: both tables fully co-partitioned. Cost-compare hyper vs
	// shuffle (§5.4) and run the winner.
	if len(l2) == 0 && len(r2) == 0 {
		var hyEst float64
		if flip {
			hyEst = r.estimateHyper(r1, rCol, l1, lCol)
		} else {
			hyEst = r.estimateHyper(l1, lCol, r1, rCol)
		}
		if hyEst >= r.estimateShuffle(l1, r1) {
			rows := r.Ex.ShuffleJoinTables(l.Table, l.Preds, lCol, rt.Table, rt.Preds, rCol)
			return rows, JoinReport{Strategy: StratShuffle}
		}
		rows, stats := r.hyperOriented(l1, l.Preds, lCol, r1, rt.Preds, rCol, flip)
		return rows, JoinReport{Strategy: StratHyper, CHyJ: stats.CHyJ, ProbeBlocks: stats.ProbeBlocks}
	}

	// Case 2: combination join. A⋈B = hyper(A1⋈B1) ∪ shuffle(A2⋈B) ∪
	// shuffle(A1⋈B2) — disjoint, complete, and mostly-hyper once the
	// transition is nearly done. Early in a transition the residual
	// shuffles (which re-read the other side) can exceed a plain shuffle
	// join, so cost-compare first (§5.4).
	var combEst float64
	if flip {
		combEst = r.estimateHyper(r1, rCol, l1, lCol)
	} else {
		combEst = r.estimateHyper(l1, lCol, r1, rCol)
	}
	if len(l2) > 0 {
		// shuffle(A2 ⋈ B): scan+shuffle A2's rows and all of B again.
		combEst += r.Model.CSJ * float64(refRows(l2)+refRows(r1)+refRows(r2))
	}
	if len(r2) > 0 {
		// shuffle(A1 ⋈ B2): re-scan+shuffle A1 and B2's residual rows.
		combEst += r.Model.CSJ * float64(refRows(l1)+refRows(r2))
	}
	if combEst >= r.estimateShuffle(append(append([]core.BlockRef(nil), l1...), l2...),
		append(append([]core.BlockRef(nil), r1...), r2...)) {
		rows := r.Ex.ShuffleJoinTables(l.Table, l.Preds, lCol, rt.Table, rt.Preds, rCol)
		return rows, JoinReport{Strategy: StratShuffle}
	}
	out, stats := r.hyperOriented(l1, l.Preds, lCol, r1, rt.Preds, rCol, flip)
	if len(l2) > 0 {
		l2Rows := r.Ex.ScanRefs(l2, l.Preds)
		bAll := r.Ex.Scan(rt.Table, rt.Preds)
		out = append(out, r.Ex.ShuffleJoinRows(l2Rows, bAll, lCol, rCol)...)
	}
	if len(r2) > 0 {
		l1Rows := r.Ex.ScanRefs(l1, l.Preds)
		r2Rows := r.Ex.ScanRefs(r2, rt.Preds)
		out = append(out, r.Ex.ShuffleJoinRows(l1Rows, r2Rows, lCol, rCol)...)
	}
	return out, JoinReport{Strategy: StratCombination, CHyJ: stats.CHyJ, ProbeBlocks: stats.ProbeBlocks}
}

// hyperOriented runs the hyper-join building on the left refs, or on the
// right refs when flip is set, always returning rows in (left, right)
// column order.
func (r *Runner) hyperOriented(lRefs []core.BlockRef, lPreds []predicate.Predicate, lCol int,
	rRefs []core.BlockRef, rPreds []predicate.Predicate, rCol int, flip bool) ([]tuple.Tuple, exec.HyperStats) {
	if !flip {
		return r.Ex.HyperJoin(lRefs, lPreds, lCol, rRefs, rPreds, rCol, r.budget())
	}
	rows, stats := r.Ex.HyperJoin(rRefs, rPreds, rCol, lRefs, lPreds, lCol, r.budget())
	lw := 0
	if len(lRefs) > 0 {
		lw = len(lRefs[0].Meta.Mins)
	}
	return swapSides(rows, lw), stats
}

// swapSides reorders concatenated join rows from (right, left) to
// (left, right) column order; leftWidth is the left row arity.
func swapSides(rows []tuple.Tuple, leftWidth int) []tuple.Tuple {
	for i, row := range rows {
		rw := len(row) - leftWidth
		fixed := make(tuple.Tuple, 0, len(row))
		fixed = append(fixed, row[rw:]...)
		fixed = append(fixed, row[:rw]...)
		rows[i] = fixed
	}
	return rows
}

// semiShuffleJoin joins materialized intermediate rows with a base
// table (§4.3): when the table has a tree on the join attribute, only
// the intermediate is shuffled and the table is read in place
// (hyper-style); otherwise both sides shuffle. rowsFirst reports whether
// the intermediate is the plan's left child (controls output column
// order).
func (r *Runner) semiShuffleJoin(rows []tuple.Tuple, rowsCol int, sc *Scan, tblCol int, tblFirst bool) ([]tuple.Tuple, JoinReport) {
	strategy := StratSemiShuffle
	opts := exec.JoinOptions{
		BuildCharge:  exec.ChargeIntermediate,
		BuildIsRight: tblFirst,
	}
	if r.ForceShuffle || sc.Table.TreeFor(tblCol) < 0 {
		// No tree on the join attribute: the base table shuffles too.
		opts.ProbeCharge = exec.ChargeShuffle
		strategy = StratShuffle
	}
	// Build on the (typically smaller) intermediate; the base-table scan
	// streams through the probe side without being materialized.
	op := r.Ex.JoinOp(exec.NewSource(rows), rowsCol, r.Ex.TableScanOp(sc.Table, sc.Preds), tblCol, opts)
	return exec.MustCollect(op), JoinReport{Strategy: strategy}
}
