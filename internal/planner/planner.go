package planner

import (
	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/tuple"
)

// Node is a query-plan node: either Scan or Join.
type Node interface{ width() int }

// Scan reads one table with predicate pushdown.
type Scan struct {
	Table *core.Table
	Preds []predicate.Predicate
}

func (s *Scan) width() int { return s.Table.Schema.NumCols() }

// Join joins two sub-plans on the given column indexes of their output
// rows (left columns first in the output).
type Join struct {
	Left, Right Node
	LCol, RCol  int
}

func (j *Join) width() int { return j.Left.width() + j.Right.width() }

// Strategy names used in reports.
const (
	StratHyper       = "hyper"
	StratShuffle     = "shuffle"
	StratCombination = "combination"
	StratSemiShuffle = "semi-shuffle"
)

// JoinReport describes how one join in the plan was executed.
type JoinReport struct {
	Strategy    string
	CHyJ        float64
	ProbeBlocks int
	OutputRows  int
}

// Report aggregates the per-join reports for a plan run.
type Report struct {
	Joins []JoinReport
}

// Runner compiles and executes plans against one executor.
type Runner struct {
	Ex    *exec.Executor
	Model cluster.CostModel
	// BudgetBlocks is the hyper-join memory budget in blocks (Fig. 14
	// sweeps it; default 4).
	BudgetBlocks int
	// ForceShuffle disables hyper-join entirely (the "AdaptDB w/ Shuffle
	// Join" and baseline configurations).
	ForceShuffle bool
	// FixedOrder disables greedy join ordering for specs: the left-deep
	// tree follows table declaration order instead of zone-map
	// cardinalities. The baseline the ordering benchmarks compare
	// against; correctness is unaffected.
	FixedOrder bool
	// EstScale multiplies every build-side cardinality estimate handed
	// to the execution joins (JoinOptions.BuildRowsEst); 0 or 1 means
	// exact. Difftest injects 10x errors in both directions through it
	// to prove the dynamic fan-out degrades in speed only, never in
	// correctness. Strategy costing (estimateHyper etc.) is not scaled —
	// only what the joins size their partitions and Bloom filters with.
	EstScale float64
	// Cache memoizes per-join strategy decisions across compiles; nil
	// disables caching (every compile re-prices its joins). See
	// cache.go for the keying and invalidation contract.
	Cache *PlanCache
	// Epoch reports a table's partitioning epoch for cache keys; the
	// owner bumps it whenever repartitioning changes the table's
	// layout. nil pins every table to epoch 0 (static layouts only).
	Epoch func(table string) uint64
	// CacheHits/CacheMisses count this Runner's own cache lookups —
	// per-compile observability on top of the cache's global stats.
	// Runners are single-compile objects in the serving layer, so plain
	// ints suffice.
	CacheHits, CacheMisses int
	// LinkWeights are measured per-link cost weights (cluster/links.go,
	// derived from observed ns-per-byte on the TCP fabric). Their mean
	// scales the network share of the shuffle estimates — on a cluster
	// whose links run slower than the calibration assumed, shuffles get
	// proportionally more expensive relative to hyper-joins, tilting the
	// §5.4 comparison toward co-partitioning (Bala-Join's communication-
	// vs-computation pricing). Nil means unmeasured: weight 1, the flat
	// eq. 1 pricing, bit-identical to the pre-link behavior.
	LinkWeights cluster.LinkWeights
}

// netWeight is the scalar the shuffle estimates multiply their network
// share by — the mean measured link weight, 1 when unmeasured.
func (r *Runner) netWeight() float64 { return r.LinkWeights.Mean() }

// estBuildRows scales a build-side row estimate by the injected
// estimate error. 0 stays 0 (unknown); known estimates stay ≥ 1.
func (r *Runner) estBuildRows(rows int) int {
	if rows <= 0 {
		return 0
	}
	if r.EstScale > 0 && r.EstScale != 1 {
		rows = int(float64(rows) * r.EstScale)
		if rows < 1 {
			rows = 1
		}
	}
	return rows
}

// NewRunner builds a plan runner with the default budget.
func NewRunner(ex *exec.Executor, model cluster.CostModel) *Runner {
	return &Runner{Ex: ex, Model: model, BudgetBlocks: 4}
}

func (r *Runner) budget() int {
	if r.BudgetBlocks > 0 {
		return r.BudgetBlocks
	}
	return 4
}

// Run executes a plan, returning the result rows and a report of join
// strategies used. It is the materializing adapter over Compile —
// callers that can consume batches should Compile and drain the DAG
// themselves (internal/session does).
func (r *Runner) Run(n Node) ([]tuple.Tuple, *Report, error) {
	c, err := r.Compile(n)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Collect(c.Root)
	if err != nil {
		return nil, c.Report, err
	}
	return rows, c.Report, nil
}

// refRows sums the row counts of a ref set.
func refRows(refs []core.BlockRef) int {
	n := 0
	for _, ref := range refs {
		n += ref.Meta.Count
	}
	return n
}

// estimateHyper prices a hyper-join schedule: build rows once plus the
// planned probe rows from the bottom-up grouping (§5.4's "compute the
// schedule of blocks to read and count the total number of block
// reads").
func (r *Runner) estimateHyper(rRefs []core.BlockRef, rCol int, sRefs []core.BlockRef, sCol int) float64 {
	if len(rRefs) == 0 || len(sRefs) == 0 {
		return 0
	}
	plan := exec.PlanHyper(rRefs, rCol, sRefs, sCol, r.budget())
	build := float64(refRows(rRefs))
	probe := 0.0
	for _, gi := range plan.ProbeIdx {
		probe += float64(sRefs[gi].Meta.Count)
	}
	return build + probe
}

// estimateShuffle prices a shuffle join with eq. 1: CSJ per row on both
// sides, plus the spill term when the executor carries a memory budget
// — a shuffle join materializes its smaller side into one hash table,
// and rows beyond the budget are demoted to disk run files (write +
// read-back, priced by SpillRowFactor). Hyper-join never pays this: its
// §4.1 grouping bounds every build to the block budget, which is
// exactly the trade the comparison should see under tight memory.
// Of the CSJ units per row, 1 is the initial read (compute/disk) and
// CSJ−1 the partition-write + re-read across the network — the share
// the measured link weights scale.
func (r *Runner) estimateShuffle(rRefs, sRefs []core.BlockRef) float64 {
	rRows, sRows := refRows(rRefs), refRows(sRefs)
	build, probe := rRows, sRows
	if sRows < rRows {
		build, probe = sRows, rRows
	}
	csj := 1 + (r.Model.CSJ-1)*r.netWeight()
	return csj*float64(rRows+sRows) + r.spillEstimate(build, probe)
}

// estRowBytes approximates a row's in-memory footprint for spill
// estimation — value structs dominate, string payloads are noise at
// planning time. Only steers strategy choice, never correctness.
const estRowBytes = 64

// spillEstimate prices the disk I/O a hash build of buildRows rows
// would pay under the executor's memory budget: the fraction of the
// build that exceeds the budget spills, and the probe rows hashing to
// spilled partitions spill with it (the second-pass pairing of the
// hybrid hash join), each priced at SpillRowFactor per row. The probe
// term is discounted by BloomSkipFrac — the share of those probe rows
// the join's Bloom filters are expected to drop before the run-file
// write; the build side always pays in full.
func (r *Runner) spillEstimate(buildRows, probeRows int) float64 {
	limit := r.Ex.MemLimit()
	if limit <= 0 || buildRows == 0 {
		return 0
	}
	bytes := int64(buildRows) * estRowBytes
	if bytes <= limit {
		return 0
	}
	frac := 1 - float64(limit)/float64(bytes)
	skip := r.Model.BloomSkipFrac
	if skip < 0 {
		skip = 0
	} else if skip > 1 {
		skip = 1
	}
	return r.Model.SpillRowFactor * frac * (float64(buildRows) + (1-skip)*float64(probeRows))
}

// residualShuffle prices one residual sub-join of a combination plan:
// eq. 1's CSJ on both sides plus the spill term of its hash build
// (built on the smaller side), mirroring estimateShuffle on row counts
// instead of ref sets.
func (r *Runner) residualShuffle(aRows, bRows int) float64 {
	build, probe := aRows, bRows
	if bRows < aRows {
		build, probe = bRows, aRows
	}
	csj := 1 + (r.Model.CSJ-1)*r.netWeight()
	return csj*float64(aRows+bRows) + r.spillEstimate(build, probe)
}

// tableJoinPlan is the compile-time strategy decision for one
// base-table ⋈ base-table join: which strategy won the §5.4 cost
// comparison, the co-partitioned (l1/r1) and residual (l2/r2) block
// refs of each side, and whether the hyper-join builds on the right
// side (flip).
type tableJoinPlan struct {
	strategy       string
	flip           bool
	l1, l2, r1, r2 []core.BlockRef
}

// planTableJoin decides a base-table join's strategy from block
// metadata alone — the three-case logic of §6 plus the §5.4 cost
// comparisons. It reads zone maps, never data blocks, so compilation
// stays O(metadata).
func (r *Runner) planTableJoin(l *Scan, lCol int, rt *Scan, rCol int) tableJoinPlan {
	lIdx := l.Table.TreeFor(lCol)
	rIdx := rt.Table.TreeFor(rCol)

	if r.ForceShuffle || lIdx < 0 || rIdx < 0 {
		// Case 3: no co-partitioning. Consider opportunistic hyper-join
		// over whatever trees exist (zone maps may still be tight).
		if !r.ForceShuffle {
			lRefs := l.Table.AllRefs(l.Preds)
			rRefs := rt.Table.AllRefs(rt.Preds)
			if hy := r.estimateHyper(lRefs, lCol, rRefs, rCol); hy > 0 && hy < r.estimateShuffle(lRefs, rRefs) {
				return tableJoinPlan{strategy: StratHyper, l1: lRefs, r1: rRefs}
			}
		}
		return tableJoinPlan{strategy: StratShuffle}
	}

	// Split each side into the co-partitioned portion (the tree on the
	// join attribute) and the residual portion (all other live trees).
	p := tableJoinPlan{l1: l.Table.Refs(lIdx, l.Preds), r1: rt.Table.Refs(rIdx, rt.Preds)}
	for _, i := range l.Table.LiveTrees() {
		if i != lIdx {
			p.l2 = append(p.l2, l.Table.Refs(i, l.Preds)...)
		}
	}
	for _, i := range rt.Table.LiveTrees() {
		if i != rIdx {
			p.r2 = append(p.r2, rt.Table.Refs(i, rt.Preds)...)
		}
	}

	// Orient the hyper-join: build on the smaller co-partitioned side.
	p.flip = refRows(p.r1) < refRows(p.l1)
	var hyEst float64
	if p.flip {
		hyEst = r.estimateHyper(p.r1, rCol, p.l1, lCol)
	} else {
		hyEst = r.estimateHyper(p.l1, lCol, p.r1, rCol)
	}

	// Case 1: both tables fully co-partitioned. Cost-compare hyper vs
	// shuffle (§5.4) and pick the winner.
	if len(p.l2) == 0 && len(p.r2) == 0 {
		if hyEst >= r.estimateShuffle(p.l1, p.r1) {
			return tableJoinPlan{strategy: StratShuffle}
		}
		p.strategy = StratHyper
		return p
	}

	// Case 2: combination join. A⋈B = hyper(A1⋈B1) ∪ shuffle(A2⋈B) ∪
	// shuffle(A1⋈B2) — disjoint, complete, and mostly-hyper once the
	// transition is nearly done. Early in a transition the residual
	// shuffles (which re-read the other side) can exceed a plain shuffle
	// join, so cost-compare first (§5.4).
	// Each residual sub-join is itself a budgeted hash build at runtime,
	// so it carries the same spill term as the plain-shuffle estimate —
	// pricing them CSJ-only would make combination look artificially
	// cheap exactly when memory is tight.
	combEst := hyEst
	if len(p.l2) > 0 {
		// shuffle(A2 ⋈ B): scan+shuffle A2's rows and all of B again.
		combEst += r.residualShuffle(refRows(p.l2), refRows(p.r1)+refRows(p.r2))
	}
	if len(p.r2) > 0 {
		// shuffle(A1 ⋈ B2): re-scan+shuffle A1 and B2's residual rows.
		combEst += r.residualShuffle(refRows(p.l1), refRows(p.r2))
	}
	if combEst >= r.estimateShuffle(append(append([]core.BlockRef(nil), p.l1...), p.l2...),
		append(append([]core.BlockRef(nil), p.r1...), p.r2...)) {
		return tableJoinPlan{strategy: StratShuffle}
	}
	p.strategy = StratCombination
	return p
}
