// PlanCache memoizes the expensive part of compilation: the per-join
// strategy decision (planTableJoin), whose hyper-join pricing walks
// every block's zone map and runs the O(blocks²) bottom-up grouping.
// A serving process compiles the same (tables, join attrs, predicates)
// shapes over and over; once the layout is stable, those decisions —
// strategy, orientation, and the co-partitioned/residual ref split —
// are pure functions of block metadata and can be replayed.
//
// Correctness hinges on the partitioning epoch in the key: every
// repartitioning step (smooth migration, tree creation, full
// repartition, amoeba transform) bumps the touched tables' epochs, so
// a cached fragment compiled against the old layout simply stops being
// addressable — there is no explicit invalidation walk, and a stale
// entry can never be served. The cache owner (internal/serve) must
// guarantee the layout is unchanged while an epoch stands; it does so
// by bumping epochs under the same write lock that serializes
// adaptation against in-flight compiles.
package planner

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"adaptdb/internal/predicate"
)

// DefaultPlanCacheSize bounds the cache when the caller passes 0.
const DefaultPlanCacheSize = 256

// PlanCache is a bounded, concurrency-safe LRU over table-join
// strategy decisions. One cache serves any number of Runners.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int

	hits, misses atomic.Int64
}

// cacheEntry values are either a tableJoinPlan (per-join strategy
// decisions) or a specOrder (whole-spec join orderings); the key
// namespaces ("S|" prefix for spec orders) keep them from colliding.
type cacheEntry struct {
	key  string
	plan any
}

// NewPlanCache builds a cache bounded to size entries (0 = default).
func NewPlanCache(size int) *PlanCache {
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	return &PlanCache{
		entries: make(map[string]*list.Element, size),
		order:   list.New(),
		cap:     size,
	}
}

// Stats reports lifetime lookup counts.
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *PlanCache) get(key string) (tableJoinPlan, bool) {
	v, ok := c.getAny(key)
	if !ok {
		return tableJoinPlan{}, false
	}
	p, typed := v.(tableJoinPlan)
	return p, typed
}

func (c *PlanCache) getAny(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).plan, true
}

func (c *PlanCache) put(key string, p tableJoinPlan) { c.putAny(key, p) }

func (c *PlanCache) putAny(key string, p any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent compile of the same shape raced us here; both
		// computed the same plan (same key ⇒ same epoch ⇒ same layout).
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, plan: p})
	for c.order.Len() > c.cap {
		old := c.order.Back()
		c.order.Remove(old)
		delete(c.entries, old.Value.(*cacheEntry).key)
	}
}

// cachedTableJoin is planTableJoin behind the Runner's cache: a hit
// replays the memoized decision (the ref slices are shared read-only —
// compile never mutates them), a miss computes and stores it. Without
// a cache it falls through untouched.
func (r *Runner) cachedTableJoin(l *Scan, lCol int, rt *Scan, rCol int) tableJoinPlan {
	if r.Cache == nil {
		return r.planTableJoin(l, lCol, rt, rCol)
	}
	key := r.planKey(l, lCol, rt, rCol)
	if p, ok := r.Cache.get(key); ok {
		r.CacheHits++
		return p
	}
	p := r.planTableJoin(l, lCol, rt, rCol)
	r.Cache.put(key, p)
	r.CacheMisses++
	return p
}

// planKey renders everything planTableJoin's answer depends on:
// (table, join attr, predicates, partitioning epoch) per side, plus
// the runner/executor knobs that steer the cost comparison. Epochs
// come from the Epoch hook; a nil hook pins every table to epoch 0,
// which is only sound if the layout never changes underneath the
// cache.
func (r *Runner) planKey(l *Scan, lCol int, rt *Scan, rCol int) string {
	var b strings.Builder
	b.Grow(128)
	sideKey(&b, l, lCol, r.epochOf(l.Table.Name))
	b.WriteByte('|')
	sideKey(&b, rt, rCol, r.epochOf(rt.Table.Name))
	b.WriteByte('|')
	if r.ForceShuffle {
		b.WriteByte('F')
	}
	if r.Ex.NoPrune {
		b.WriteByte('N')
	}
	b.WriteString(strconv.Itoa(r.budget()))
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(r.Ex.MemLimit(), 10))
	return b.String()
}

func (r *Runner) epochOf(table string) uint64 {
	if r.Epoch == nil {
		return 0
	}
	return r.Epoch(table)
}

func sideKey(b *strings.Builder, s *Scan, col int, epoch uint64) {
	b.WriteString(s.Table.Name)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(epoch, 10))
	b.WriteByte('#')
	b.WriteString(strconv.Itoa(col))
	for _, p := range s.Preds {
		b.WriteByte(';')
		writePred(b, p)
	}
}

// writePred renders one predicate for the key. Predicate.String is the
// log renderer and covers column, operator and operand values; two
// predicates with equal strings filter identically.
func writePred(b *strings.Builder, p predicate.Predicate) {
	b.WriteString(p.String())
}
