// The distributed plan→Operator compiler: when the executor has an
// execution fabric (a simulated NodeSet or the TCP fabric of
// internal/net — exec.Fabric abstracts both), Compile lowers the plan
// into per-node fragments connected by exchange operators instead of
// one centralized DAG. Per join it
// chooses between
//
//   - co-located hyper-join: both sides have trees on the join
//     attribute and the §5.4 comparison favors hyper — groups run at
//     the nodes holding their build blocks and NO exchange exists, so
//     zero rows cross the simulated network (the co-partitioning win
//     the paper's Fig. 1 measures);
//   - shuffle: both sides are hash-exchanged on the join key, then
//     joined node-locally — every row moves, as eq. 1 charges;
//   - semi-shuffle/broadcast: one side (a pipelined intermediate) is
//     broadcast to every node while the base table is scanned in place,
//     never moving — §4.3's "only tempLO is shuffled" generalized to
//     physical node placement.
//
// Scans are split by block placement (dfs.Store primary replicas) so
// each node reads its own blocks; exchanges meter the rows and bytes
// that actually cross nodes (cluster.Meter.AddExchange) instead of the
// old call-site charges.
package planner

import (
	"fmt"
	"sync"

	"adaptdb/internal/core"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
)

// distOut is a compiled sub-plan in the distributed regime: either
// partitioned (parts[i] is node i's fragment) or a single coordinator
// stream (a hyper-join or combination output).
type distOut struct {
	parts  []exec.Operator
	global exec.Operator
}

// toGlobal merges a partitioned sub-plan into one coordinator stream,
// driving every node fragment concurrently. The fabric supplies the
// gather: in-process for the simulated NodeSet, frame streams back to
// the coordinator for the TCP fabric.
func (d distOut) toGlobal(fb exec.Fabric) exec.Operator {
	if d.global != nil {
		return d.global
	}
	return fb.Gather(d.parts)
}

// instrumentAt wraps a node fragment with stats collection tagged with
// its node, so session results expose per-node skew.
func (r *Runner) instrumentAt(c *Compiled, node int, label string, op exec.Operator, onDone func(exec.OpStats)) exec.Operator {
	in := exec.Instrument(fmt.Sprintf("%s@n%d", label, node), op, onDone).AtNode(node)
	c.ops = append(c.ops, in)
	return in
}

// reportJoinAccum appends a report entry for a join whose execution is
// spread across node fragments: each fragment's completion hook adds
// its share of the output rows (and, when a hyper part exists, its
// statistics). Hooks fire from concurrent drain goroutines, hence the
// lock.
func (r *Runner) reportJoinAccum(c *Compiled, jr JoinReport, hyper *exec.HyperJoinOp) func(exec.OpStats) {
	idx := len(c.Report.Joins)
	c.Report.Joins = append(c.Report.Joins, jr)
	rep := c.Report
	var mu sync.Mutex
	return func(st exec.OpStats) {
		mu.Lock()
		defer mu.Unlock()
		rep.Joins[idx].OutputRows += int(st.Rows)
		if hyper != nil {
			hs := hyper.Stats()
			rep.Joins[idx].CHyJ = hs.CHyJ
			rep.Joins[idx].ProbeBlocks = hs.ProbeBlocks
		}
	}
}

// compileDist lowers a plan node for the node fabric.
func (r *Runner) compileDist(n Node, c *Compiled) (distOut, error) {
	switch nd := n.(type) {
	case *Scan:
		return r.distScan(c, nd), nil
	case *Join:
		lScan, lIsScan := nd.Left.(*Scan)
		rScan, rIsScan := nd.Right.(*Scan)
		switch {
		case lIsScan && rIsScan:
			return r.distTableJoin(nd, lScan, rScan, c)
		case rIsScan:
			build, err := r.compileDist(nd.Left, c)
			if err != nil {
				return distOut{}, err
			}
			return r.distBroadcastJoin(c, build, r.estimateRows(nd.Left), nd.LCol, rScan, nd.RCol, false), nil
		case lIsScan:
			build, err := r.compileDist(nd.Right, c)
			if err != nil {
				return distOut{}, err
			}
			return r.distBroadcastJoin(c, build, r.estimateRows(nd.Right), nd.RCol, lScan, nd.LCol, true), nil
		default:
			// Two intermediates: hash-exchange both across the nodes and
			// join node-locally.
			lOut, err := r.compileDist(nd.Left, c)
			if err != nil {
				return distOut{}, err
			}
			rOut, err := r.compileDist(nd.Right, c)
			if err != nil {
				return distOut{}, err
			}
			fill := r.reportJoinAccum(c, JoinReport{Strategy: StratShuffle}, nil)
			return distOut{parts: r.distShuffleParts(c, fill, "intermediates",
				lOut, nd.LCol, r.estimateRows(nd.Left),
				rOut, nd.RCol, r.estimateRows(nd.Right))}, nil
		}
	default:
		return distOut{}, fmt.Errorf("planner: unknown node %T", n)
	}
}

// exchangeOf hash-partitions a sub-plan across the nodes: partitioned
// inputs keep their home nodes (same-node deliveries stay off the
// network), coordinator streams are all-remote.
func (r *Runner) exchangeOf(fb exec.Fabric, d distOut, key int) exec.Exchanger {
	if d.global != nil {
		return fb.ShuffleGlobal(d.global, key)
	}
	return fb.Shuffle(d.parts, key)
}

// distScan splits a table scan by block placement: node i reads the
// blocks whose primary replica it holds, on its own worker pool.
func (r *Runner) distScan(c *Compiled, s *Scan) distOut {
	return r.distRefsScan(c, s.Table.Name, r.scanRefs(s), s.Preds)
}

// distTableJoin lowers a base-table ⋈ base-table join to the strategy
// planTableJoin picks from zone-map metadata, realized across nodes.
func (r *Runner) distTableJoin(j *Join, l, rt *Scan, c *Compiled) (distOut, error) {
	p := r.cachedTableJoin(l, j.LCol, rt, j.RCol)
	pair := l.Table.Name + "⋈" + rt.Table.Name
	switch p.strategy {
	case StratShuffle:
		fill := r.reportJoinAccum(c, JoinReport{Strategy: StratShuffle}, nil)
		return distOut{parts: r.distShuffleParts(c, fill, pair,
			r.distScan(c, l), j.LCol, refRows(r.scanRefs(l)),
			r.distScan(c, rt), j.RCol, refRows(r.scanRefs(rt)))}, nil

	case StratHyper:
		// Co-located: hyper-join groups already run at the nodes holding
		// their build blocks (taskNode locality); nothing is exchanged.
		hy, op := r.hyperOp(p, l, j.LCol, rt, j.RCol)
		fill := r.reportJoin(c, JoinReport{Strategy: StratHyper}, hy)
		return distOut{global: r.instrument(c, "join[hyper]("+pair+")", op, fill)}, nil

	case StratCombination:
		// hyper(A1⋈B1) ∪ shuffle(A2⋈B) ∪ shuffle(A1⋈B2), the hyper part
		// co-located and the residual parts exchanged.
		hy, hyOp := r.hyperOp(p, l, j.LCol, rt, j.RCol)
		fill := r.reportJoinAccum(c, JoinReport{Strategy: StratCombination}, hy)
		fb := r.Ex.ExecFabric()
		parts := []exec.Operator{r.instrument(c, "join[hyper-part]("+pair+")", hyOp, nil)}
		if len(p.l2) > 0 {
			lsc := r.distRefsScan(c, l.Table.Name+":residual", p.l2, l.Preds)
			rsc := r.distScan(c, rt)
			parts = append(parts, fb.Gather(r.distShuffleParts(c, nil, pair,
				lsc, j.LCol, refRows(p.l2), rsc, j.RCol, refRows(p.r1)+refRows(p.r2))))
		}
		if len(p.r2) > 0 {
			lsc := r.distRefsScan(c, l.Table.Name+":copart", p.l1, l.Preds)
			rsc := r.distRefsScan(c, rt.Table.Name+":residual", p.r2, rt.Preds)
			parts = append(parts, fb.Gather(r.distShuffleParts(c, nil, pair,
				lsc, j.LCol, refRows(p.l1), rsc, j.RCol, refRows(p.r2))))
		}
		op := r.instrument(c, "join[combination]("+pair+")", exec.Concat(parts...), fill)
		return distOut{global: op}, nil
	}
	return distOut{}, fmt.Errorf("planner: unknown strategy %q", p.strategy)
}

// distRefsScan splits an explicit ref set (a combination join's
// co-partitioned or residual portion) across the nodes by placement.
func (r *Runner) distRefsScan(c *Compiled, label string, refs []core.BlockRef, preds []predicate.Predicate) distOut {
	fb := r.Ex.ExecFabric()
	byNode := fb.SplitRefs(refs)
	parts := make([]exec.Operator, fb.N())
	for i := range parts {
		parts[i] = r.instrumentAt(c, i, "scan("+label+")", fb.ScanAt(i, byNode[i], preds), nil)
	}
	return distOut{parts: parts}
}

// distShuffleParts wires a both-sides-exchanged join: each side's
// fragments feed a hash exchange on its join column, and node i joins
// the two i-th outputs on its own pool. fill (optional) accumulates
// output rows into the join's report entry.
func (r *Runner) distShuffleParts(c *Compiled, fill func(exec.OpStats), pair string,
	l distOut, lCol, lRows int, rt distOut, rCol, rRows int) []exec.Operator {
	fb := r.Ex.ExecFabric()
	build, probe := l, rt
	bCol, pCol := lCol, rCol
	bRows := lRows
	flip := rRows < lRows
	if flip {
		build, probe = rt, l
		bCol, pCol = rCol, lCol
		bRows = rRows
	}
	bx := r.exchangeOf(fb, build, bCol)
	px := r.exchangeOf(fb, probe, pCol)
	parts := make([]exec.Operator, fb.N())
	// A hash exchange deals the build roughly evenly, so each node's
	// join sizes its fan-out for a 1/N share.
	perNode := r.estBuildRows(bRows / fb.N())
	for i := 0; i < fb.N(); i++ {
		op := fb.At(i).JoinOp(bx.Output(i), bCol, px.Output(i), pCol,
			exec.JoinOptions{BuildIsRight: flip, BuildRowsEst: perNode})
		parts[i] = r.instrumentAt(c, i, "join[shuffle]("+pair+")", op, fill)
	}
	return parts
}

// distBroadcastJoin lowers an intermediate ⋈ base-table join — one side
// exchanged, the other (mostly) in place. Like the centralized
// compileSemiShuffle, the one-side exchange is only available when the
// base table has a tree on the join attribute (and hyper-join is not
// force-disabled); otherwise the base table must repartition too, and
// the join compiles — and is reported and priced — as a full shuffle
// with both sides exchanged. With a tree, the smaller side by estimate
// is the one that gets duplicated:
//
//   - small intermediate: broadcast it to every node and probe the base
//     table where its blocks live (the base table never moves — §4.3's
//     semi-shuffle made physical);
//   - large intermediate (a fact-side pipeline feeding a small
//     dimension): broadcast the base table instead and deal the
//     intermediate round-robin across the nodes, so the big stream
//     crosses the network once instead of N times.
//
// tblFirst reports that the base table is the plan's left child
// (controls output column order).
func (r *Runner) distBroadcastJoin(c *Compiled, build distOut, buildRows, buildCol int, sc *Scan, tblCol int, tblFirst bool) distOut {
	fb := r.Ex.ExecFabric()
	if r.ForceShuffle || sc.Table.TreeFor(tblCol) < 0 {
		// No tree on the join attribute: both sides hash-exchange.
		fill := r.reportJoinAccum(c, JoinReport{Strategy: StratShuffle}, nil)
		tbl := r.distScan(c, sc)
		tblRows := refRows(r.scanRefs(sc))
		if tblFirst {
			return distOut{parts: r.distShuffleParts(c, fill, sc.Table.Name+"⋈intermediate",
				tbl, tblCol, tblRows, build, buildCol, buildRows)}
		}
		return distOut{parts: r.distShuffleParts(c, fill, "intermediate⋈"+sc.Table.Name,
			build, buildCol, buildRows, tbl, tblCol, tblRows)}
	}
	fill := r.reportJoinAccum(c, JoinReport{Strategy: StratSemiShuffle}, nil)
	parts := make([]exec.Operator, fb.N())
	tblRows := refRows(r.scanRefs(sc))
	if buildRows <= tblRows {
		bx := fb.Broadcast(build.toGlobal(fb))
		probe := r.distScan(c, sc)
		// A broadcast build lands whole on every node — no 1/N share.
		est := r.estBuildRows(buildRows)
		for i := 0; i < fb.N(); i++ {
			op := fb.At(i).JoinOp(bx.Output(i), buildCol, probe.parts[i], tblCol,
				exec.JoinOptions{BuildIsRight: tblFirst, BuildRowsEst: est})
			parts[i] = r.instrumentAt(c, i, "join[semi-shuffle]("+sc.Table.Name+")", op, fill)
		}
		return distOut{parts: parts}
	}
	// Flip: the base table is the small side. Broadcast its (gathered)
	// per-node scans and deal the intermediate across the nodes.
	tx := fb.Broadcast(r.distScan(c, sc).toGlobal(fb))
	px := fb.Deal(build.toGlobal(fb))
	est := r.estBuildRows(tblRows)
	for i := 0; i < fb.N(); i++ {
		op := fb.At(i).JoinOp(tx.Output(i), tblCol, px.Output(i), buildCol,
			exec.JoinOptions{BuildIsRight: !tblFirst, BuildRowsEst: est})
		parts[i] = r.instrumentAt(c, i, "join[semi-shuffle]("+sc.Table.Name+")", op, fill)
	}
	return distOut{parts: parts}
}
