package planner

import (
	"strings"
	"testing"

	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

func specCatalog(f *fixture) query.Catalog {
	return query.Catalog{"lineitem": f.line, "orders": f.ord, "customer": f.cust}
}

// threeWay is the canonical test graph: lineitem ⋈ orders on orderkey,
// orders ⋈ customer on custkey.
func threeWay(preds ...query.Pred) query.Spec {
	return query.Spec{
		Label:  "threeway",
		Tables: []query.TableRef{query.T("lineitem", preds...), query.T("orders"), query.T("customer")},
		Joins: []query.JoinEdge{
			query.On(query.C("lineitem", "orderkey"), query.C("orders", "orderkey")),
			query.On(query.C("orders", "custkey"), query.C("customer", "custkey")),
		},
	}
}

// oracleThreeWay joins the raw rows left-to-right with nested loops —
// declaration order, so spec results must match after the planner's
// reordering projection.
func oracleThreeWay(f *fixture, lrows []tuple.Tuple) []tuple.Tuple {
	lo := exec.NestedLoopJoin(lrows, f.orows, 0, 0)
	return exec.NestedLoopJoin(lo, f.crows, 4, 0) // custkey = offset 3 + 1
}

func bindSpec(t *testing.T, f *fixture, s query.Spec) *query.Bound {
	t.Helper()
	b, err := s.Bind(specCatalog(f))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSpecThreeWayMatchesOracle(t *testing.T) {
	f := setup(t, true)
	b := bindSpec(t, f, threeWay())
	rows, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, oracleThreeWay(f, f.lrows), "greedy three-way")
}

func TestSpecFixedOrderSameRows(t *testing.T) {
	f := setup(t, true)
	preds := []query.Pred{query.Cmp("shipdate", predicate.LT, value.NewInt(800))}
	b := bindSpec(t, f, threeWay(preds...))
	greedy, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	f.runner.FixedOrder = true
	fixed, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, greedy, fixed, "greedy vs fixed order")
}

func TestSpecGreedyOrderPrefersSelectiveEdge(t *testing.T) {
	f := setup(t, true)
	ord := f.runner.planSpecOrder(bindSpec(t, f, threeWay()))
	if ord.empty {
		t.Fatal("non-empty query planned empty")
	}
	// customer (60 rows) and orders (800) are the cheapest edge; lineitem
	// (3000) must come last.
	if ord.seq[len(ord.seq)-1] != 0 {
		t.Errorf("greedy seq = %v, want lineitem (table 0) last", ord.seq)
	}
	f.runner.FixedOrder = true
	ford := f.runner.planSpecOrder(bindSpec(t, f, threeWay()))
	if ford.seq[0] != 0 || ford.seq[1] != 1 || ford.seq[2] != 2 {
		t.Errorf("fixed seq = %v, want declaration order", ford.seq)
	}
}

// TestSpecCyclicEdge: a third edge closes the triangle; the tree skips
// it and the residual filter applies it.
func TestSpecCyclicEdge(t *testing.T) {
	f := setup(t, true)
	s := threeWay()
	s.Joins = append(s.Joins, query.On(query.C("lineitem", "partkey"), query.C("customer", "custkey")))
	b := bindSpec(t, f, s)
	rows, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	var want []tuple.Tuple
	for _, r := range oracleThreeWay(f, f.lrows) {
		if value.Equal(r[1], r[5]) { // partkey == customer.custkey
			want = append(want, r)
		}
	}
	sameRows(t, rows, want, "cyclic edge")
}

// TestSpecMultiAttrEdge: a two-attribute edge joins on the first pair
// and residual-filters the second.
func TestSpecMultiAttrEdge(t *testing.T) {
	f := setup(t, true)
	s := query.Spec{
		Tables: []query.TableRef{query.T("lineitem"), query.T("orders")},
		Joins: []query.JoinEdge{
			query.On(query.C("lineitem", "orderkey"), query.C("orders", "orderkey")).
				And(query.C("lineitem", "partkey"), query.C("orders", "custkey")),
		},
	}
	b := bindSpec(t, f, s)
	rows, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	var want []tuple.Tuple
	for _, r := range exec.NestedLoopJoin(f.lrows, f.orows, 0, 0) {
		if value.Equal(r[1], r[4]) { // partkey == custkey
			want = append(want, r)
		}
	}
	sameRows(t, rows, want, "multi-attribute edge")
}

// TestSpecProvablyEmpty: a predicate that prunes one table to nothing
// compiles to the empty stream; a global aggregate still emits its row.
func TestSpecProvablyEmpty(t *testing.T) {
	f := setup(t, true)
	s := threeWay(query.Cmp("shipdate", predicate.LT, value.NewInt(-5)))
	b := bindSpec(t, f, s)
	if ord := f.runner.planSpecOrder(b); !ord.empty {
		t.Error("zero-block table not planned empty")
	}
	rows, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("%d rows from a provably-empty plan", len(rows))
	}
	s.Aggs = []query.Agg{query.Count(), query.Sum(query.C("lineitem", "shipdate"))}
	rows, _, err = f.runner.RunSpec(bindSpec(t, f, s))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty global aggregate = %v", rows)
	}
}

// TestSpecDisjointRangesEmpty: zone maps on the join columns prove the
// edge can never match (orderkey < 50 vs orderkey > 300).
func TestSpecDisjointRangesEmpty(t *testing.T) {
	f := setup(t, true)
	s := query.Spec{
		Tables: []query.TableRef{
			query.T("lineitem", query.Cmp("orderkey", predicate.LT, value.NewInt(50))),
			query.T("orders", query.Cmp("orderkey", predicate.GT, value.NewInt(300))),
		},
		Joins: []query.JoinEdge{query.On(query.C("lineitem", "orderkey"), query.C("orders", "orderkey"))},
	}
	b := bindSpec(t, f, s)
	if ord := f.runner.planSpecOrder(b); !ord.empty {
		t.Error("disjoint join ranges not planned empty")
	}
	rows, _, err := f.runner.RunSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("%d rows, want 0", len(rows))
	}
}

func TestSpecSingleTable(t *testing.T) {
	f := setup(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(500))}
	s := query.Spec{Tables: []query.TableRef{
		query.T("lineitem", query.Cmp("shipdate", predicate.LT, value.NewInt(500))),
	}}
	rows, _, err := f.runner.RunSpec(bindSpec(t, f, s))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, filter(f.lrows, preds), "single-table spec")
}

// TestSpecGroupByMatchesReference: the full grouped pipeline — 3-way
// join, group by customer nation, COUNT/SUM/MIN/AVG — against a
// map-based reference over the nested-loop oracle.
func TestSpecGroupByMatchesReference(t *testing.T) {
	f := setup(t, true)
	s := threeWay()
	s.GroupBy = []query.Col{query.C("customer", "nation")}
	s.Aggs = []query.Agg{
		query.Count(),
		query.Sum(query.C("lineitem", "shipdate")),
		query.Min(query.C("lineitem", "partkey")),
		query.Avg(query.C("orders", "custkey")),
	}
	rows, _, err := f.runner.RunSpec(bindSpec(t, f, s))
	if err != nil {
		t.Fatal(err)
	}

	type acc struct {
		n, sum, minp, csum int64
		seen               bool
	}
	ref := map[int64]*acc{}
	for _, r := range oracleThreeWay(f, f.lrows) {
		nation := r[6].Int64()
		a := ref[nation]
		if a == nil {
			a = &acc{}
			ref[nation] = a
		}
		a.n++
		a.sum += r[2].Int64()  // lineitem.shipdate
		a.csum += r[4].Int64() // orders.custkey
		if !a.seen || r[1].Int64() < a.minp {
			a.minp, a.seen = r[1].Int64(), true
		}
	}
	if len(rows) != len(ref) {
		t.Fatalf("%d groups, reference %d", len(rows), len(ref))
	}
	for _, r := range rows {
		a := ref[r[0].Int64()]
		if a == nil {
			t.Fatalf("unexpected group %v", r[0])
		}
		if r[1].Int64() != a.n || r[2].Int64() != a.sum || r[3].Int64() != a.minp {
			t.Errorf("group %v = %v, want n=%d sum=%d min=%d", r[0], r, a.n, a.sum, a.minp)
		}
		wantAvg := float64(a.csum) / float64(a.n)
		if r[4].Float64() != wantAvg {
			t.Errorf("group %v avg = %v, want %v", r[0], r[4], wantAvg)
		}
	}
}

// TestSpecOrderCached: orderings memoize under the spec key and stop
// being addressable when a table's epoch moves.
func TestSpecOrderCached(t *testing.T) {
	f := setup(t, true)
	epoch := uint64(0)
	f.runner.Cache = NewPlanCache(0)
	f.runner.Epoch = func(string) uint64 { return epoch }
	b := bindSpec(t, f, threeWay())

	if _, err := f.runner.CompileSpec(b); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := f.runner.CacheMisses
	if missesAfterFirst == 0 {
		t.Fatal("first compile should miss")
	}
	if _, err := f.runner.CompileSpec(b); err != nil {
		t.Fatal(err)
	}
	if f.runner.CacheHits == 0 {
		t.Error("second compile should hit the cached ordering")
	}
	hits := f.runner.CacheHits
	epoch++
	if _, err := f.runner.CompileSpec(b); err != nil {
		t.Fatal(err)
	}
	if f.runner.CacheMisses <= missesAfterFirst {
		t.Error("epoch bump should invalidate the cached ordering")
	}
	_ = hits
}

// TestSpecKeyDiscriminates extends the plan-cache key contract to every
// spec field: join-graph shape, group-by columns, aggregate functions,
// and the ordering knob can never share a cached ordering.
func TestSpecKeyDiscriminates(t *testing.T) {
	f := setup(t, true)
	key := func(s query.Spec) string { return f.runner.specKey(bindSpec(t, f, s)) }

	seen := map[string]string{}
	check := func(label string, k string) {
		t.Helper()
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("%s key collides with %s: %q", label, prev, k)
			}
		}
		seen[label] = k
	}

	base := threeWay()
	check("base", key(base))

	pred := threeWay(query.Cmp("shipdate", predicate.LT, value.NewInt(5)))
	check("pred", key(pred))

	cyc := threeWay()
	cyc.Joins = append(cyc.Joins, query.On(query.C("lineitem", "partkey"), query.C("customer", "custkey")))
	check("cyclic-edge", key(cyc))

	multi := threeWay()
	multi.Joins[0] = multi.Joins[0].And(query.C("lineitem", "partkey"), query.C("orders", "custkey"))
	check("multi-attr", key(multi))

	grouped := threeWay()
	grouped.GroupBy = []query.Col{query.C("customer", "nation")}
	check("group-by", key(grouped))

	grouped2 := threeWay()
	grouped2.GroupBy = []query.Col{query.C("customer", "custkey")}
	check("group-by-col", key(grouped2))

	agg := threeWay()
	agg.Aggs = []query.Agg{query.Sum(query.C("lineitem", "shipdate"))}
	check("agg-sum", key(agg))

	agg2 := threeWay()
	agg2.Aggs = []query.Agg{query.Max(query.C("lineitem", "shipdate"))}
	check("agg-func", key(agg2))

	f.runner.FixedOrder = true
	check("fixed-order", key(base))
	f.runner.FixedOrder = false

	f.runner.Epoch = func(tbl string) uint64 {
		if tbl == "orders" {
			return 7
		}
		return 0
	}
	check("epoch", key(base))
	f.runner.Epoch = nil

	for label, k := range seen {
		if !strings.HasPrefix(k, "S|") {
			t.Errorf("%s key %q lacks the spec namespace prefix", label, k)
		}
	}
}

// TestSpecFootprint: grouped or not, a multi-join spec prices a
// non-zero build footprint; the empty plan prices zero.
func TestSpecFootprint(t *testing.T) {
	f := setup(t, true)
	if fp := f.runner.EstimateSpecFootprint(bindSpec(t, f, threeWay())); fp <= 0 {
		t.Errorf("three-way footprint = %d, want > 0", fp)
	}
	empty := threeWay(query.Cmp("shipdate", predicate.LT, value.NewInt(-5)))
	if fp := f.runner.EstimateSpecFootprint(bindSpec(t, f, empty)); fp != 0 {
		t.Errorf("empty-plan footprint = %d, want 0", fp)
	}
}
