package planner

import (
	"math/rand"
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/smooth"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
	"adaptdb/internal/workload"
)

var (
	lineSch = schema.MustNew(
		schema.Column{Name: "orderkey", Kind: value.Int},
		schema.Column{Name: "partkey", Kind: value.Int},
		schema.Column{Name: "shipdate", Kind: value.Int},
	)
	orderSch = schema.MustNew(
		schema.Column{Name: "orderkey", Kind: value.Int},
		schema.Column{Name: "custkey", Kind: value.Int},
	)
	custSch = schema.MustNew(
		schema.Column{Name: "custkey", Kind: value.Int},
		schema.Column{Name: "nation", Kind: value.Int},
	)
)

type fixture struct {
	store               *dfs.Store
	meter               *cluster.Meter
	runner              *Runner
	line, ord, cust     *core.Table
	lrows, orows, crows []tuple.Tuple
}

func setup(t *testing.T, coPart bool) *fixture {
	t.Helper()
	store := dfs.NewStore(4, 2, 3)
	rng := rand.New(rand.NewSource(11))
	var lrows, orows, crows []tuple.Tuple
	for i := 0; i < 3000; i++ {
		lrows = append(lrows, tuple.Tuple{
			value.NewInt(rng.Int63n(400)),
			value.NewInt(rng.Int63n(100)),
			value.NewInt(rng.Int63n(2500)),
		})
	}
	for i := 0; i < 800; i++ {
		orows = append(orows, tuple.Tuple{
			value.NewInt(int64(i) % 400),
			value.NewInt(rng.Int63n(60)),
		})
	}
	for i := 0; i < 60; i++ {
		crows = append(crows, tuple.Tuple{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(5)),
		})
	}
	joinAttr := 0
	if !coPart {
		joinAttr = -1
	}
	line, err := core.Load(store, "lineitem", lineSch, lrows, core.LoadOptions{RowsPerBlock: 200, Seed: 1, JoinAttr: joinAttr})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := core.Load(store, "orders", orderSch, orows, core.LoadOptions{RowsPerBlock: 100, Seed: 2, JoinAttr: joinAttr})
	if err != nil {
		t.Fatal(err)
	}
	cust, err := core.Load(store, "customer", custSch, crows, core.LoadOptions{RowsPerBlock: 16, Seed: 3, JoinAttr: -1})
	if err != nil {
		t.Fatal(err)
	}
	meter := &cluster.Meter{}
	runner := NewRunner(exec.New(store, meter), cluster.Default())
	return &fixture{store: store, meter: meter, runner: runner,
		line: line, ord: ord, cust: cust, lrows: lrows, orows: orows, crows: crows}
}

func oracleJoin(l, r []tuple.Tuple, lc, rc int) []tuple.Tuple {
	return exec.NestedLoopJoin(l, r, lc, rc)
}

func filter(rows []tuple.Tuple, preds []predicate.Predicate) []tuple.Tuple {
	var out []tuple.Tuple
	for _, r := range rows {
		if predicate.MatchesAll(preds, r) {
			out = append(out, r)
		}
	}
	return out
}

func sameRows(t *testing.T, got, want []tuple.Tuple, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, oracle %d", label, len(got), len(want))
	}
	exec.SortRows(got)
	exec.SortRows(want)
	for i := range got {
		for c := range got[i] {
			if value.Compare(got[i][c], want[i][c]) != 0 {
				t.Fatalf("%s: row %d differs", label, i)
			}
		}
	}
}

func TestScanPlan(t *testing.T) {
	f := setup(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(500))}
	rows, rep, err := f.runner.Run(&Scan{Table: f.line, Preds: preds})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Joins) != 0 {
		t.Errorf("scan should report no joins")
	}
	if len(rows) != len(filter(f.lrows, preds)) {
		t.Errorf("scan rows = %d, want %d", len(rows), len(filter(f.lrows, preds)))
	}
}

func TestCase1HyperJoinChosen(t *testing.T) {
	f := setup(t, true)
	plan := &Join{
		Left:  &Scan{Table: f.line},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Joins) != 1 || rep.Joins[0].Strategy != StratHyper {
		t.Fatalf("co-partitioned join should use hyper: %+v", rep.Joins)
	}
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "case1")
}

func TestForceShuffle(t *testing.T) {
	f := setup(t, true)
	f.runner.ForceShuffle = true
	plan := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins[0].Strategy != StratShuffle {
		t.Fatalf("ForceShuffle ignored: %+v", rep.Joins)
	}
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "force-shuffle")
}

func TestCase3FallsBackToShuffleOrOpportunisticHyper(t *testing.T) {
	f := setup(t, false) // selection-only trees
	plan := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Joins) != 1 {
		t.Fatalf("one join expected")
	}
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "case3")
}

func TestCase2CombinationDuringTransition(t *testing.T) {
	f := setup(t, true)
	// Push lineitem into a partial transition: create a partkey tree and
	// move ~30% of data into it.
	w := workload.NewWindow(10)
	m := smooth.New(w, 5)
	var meter cluster.Meter
	for i := 0; i < 3; i++ {
		q := workload.Query{JoinAttr: 1}
		w.Add(q)
		if _, err := m.Step(f.line, q, &meter, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.line.LiveTrees()) < 2 {
		t.Fatalf("fixture should be mid-transition; trees=%v", f.line.LiveTrees())
	}
	plan := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins[0].Strategy != StratCombination {
		t.Fatalf("mid-transition join should be combination: %+v", rep.Joins)
	}
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "case2")
}

func TestMultiJoinLeftDeepSemiShuffle(t *testing.T) {
	f := setup(t, true)
	// (lineitem ⋈ orders) ⋈ customer on custkey: the intermediate joins a
	// base table; customer has no custkey tree here, so both sides shuffle.
	inner := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	outer := &Join{Left: inner, Right: &Scan{Table: f.cust},
		LCol: lineSch.NumCols() + 1, RCol: 0} // o_custkey in concat row
	rows, rep, err := f.runner.Run(outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Joins) != 2 {
		t.Fatalf("two joins expected: %+v", rep.Joins)
	}
	lo := oracleJoin(f.lrows, f.orows, 0, 0)
	want := oracleJoin(lo, f.crows, lineSch.NumCols()+1, 0)
	sameRows(t, rows, want, "multi-join")
}

func TestSemiShuffleUsesTableTree(t *testing.T) {
	f := setup(t, true)
	// orders has a tree on orderkey (col 0): joining an intermediate to it
	// on orderkey should be semi-shuffle (only the intermediate shuffles).
	inner := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.cust}, LCol: 1, RCol: 0}
	// lineitem ⋈ customer on partkey=custkey is semantically odd but fine
	// structurally; then join to orders on l_orderkey.
	outer := &Join{Left: inner, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	_, rep, err := f.runner.Run(outer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins[1].Strategy != StratSemiShuffle {
		t.Fatalf("expected semi-shuffle into tree-partitioned table: %+v", rep.Joins)
	}
}

func TestRightScanLeftIntermediateOrder(t *testing.T) {
	f := setup(t, true)
	// Scan on the LEFT, intermediate on the RIGHT: column order of output
	// must still be (left, right).
	inner := &Join{Left: &Scan{Table: f.ord}, Right: &Scan{Table: f.cust}, LCol: 1, RCol: 0}
	outer := &Join{Left: &Scan{Table: f.line}, Right: inner, LCol: 0, RCol: 0}
	rows, _, err := f.runner.Run(outer)
	if err != nil {
		t.Fatal(err)
	}
	oc := oracleJoin(f.orows, f.crows, 1, 0)
	want := oracleJoin(f.lrows, oc, 0, 0)
	sameRows(t, rows, want, "right-scan order")
}

func TestHyperBuildSideFlipKeepsColumnOrder(t *testing.T) {
	f := setup(t, true)
	// orders is smaller than lineitem, so the hyper-join builds on orders
	// internally when orders is the left input; output order must remain
	// (left, right) regardless.
	plan := &Join{Left: &Scan{Table: f.ord}, Right: &Scan{Table: f.line}, LCol: 0, RCol: 0}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joins[0].Strategy != StratHyper {
		t.Fatalf("expected hyper: %+v", rep.Joins)
	}
	want := oracleJoin(f.orows, f.lrows, 0, 0)
	sameRows(t, rows, want, "flip order")
}

func TestHyperCheaperThanShuffleEndToEnd(t *testing.T) {
	f := setup(t, true)
	model := cluster.Default()
	plan := &Join{Left: &Scan{Table: f.line}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
	if _, _, err := f.runner.Run(plan); err != nil {
		t.Fatal(err)
	}
	hyper := f.meter.Reset()
	f.runner.ForceShuffle = true
	if _, _, err := f.runner.Run(plan); err != nil {
		t.Fatal(err)
	}
	shuffle := f.meter.Reset()
	if hyper.SimSeconds(model) >= shuffle.SimSeconds(model) {
		t.Errorf("hyper %.2fs should beat shuffle %.2fs", hyper.SimSeconds(model), shuffle.SimSeconds(model))
	}
}

func TestPredicatePushdownInJoin(t *testing.T) {
	f := setup(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(800))}
	plan := &Join{
		Left:  &Scan{Table: f.line, Preds: preds},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	rows, _, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleJoin(filter(f.lrows, preds), f.orows, 0, 0)
	sameRows(t, rows, want, "pushdown")
}
