package planner

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// TestPlanCacheLRU exercises the bare cache mechanics: bounded size,
// eviction from the cold end, promotion on get, and lookup accounting.
func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), tableJoinPlan{strategy: fmt.Sprintf("s%d", i)})
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch k0 so k1 becomes the LRU, then overflow.
	if p, ok := c.get("k0"); !ok || p.strategy != "s0" {
		t.Fatalf("get k0 = %+v ok=%v", p, ok)
	}
	c.put("k3", tableJoinPlan{strategy: "s3"})
	if c.Len() != 3 {
		t.Fatalf("len after overflow = %d, want 3", c.Len())
	}
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 survived eviction; LRU should have evicted it")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
	// Re-putting an existing key updates in place, no growth.
	c.put("k3", tableJoinPlan{strategy: "s3'"})
	if c.Len() != 3 {
		t.Fatalf("len after re-put = %d, want 3", c.Len())
	}
	if p, _ := c.get("k3"); p.strategy != "s3'" {
		t.Fatalf("re-put not visible: %q", p.strategy)
	}
}

// TestPlanCacheDefaultSize: size 0 falls back to the default bound.
func TestPlanCacheDefaultSize(t *testing.T) {
	c := NewPlanCache(0)
	for i := 0; i < DefaultPlanCacheSize+10; i++ {
		c.put(fmt.Sprintf("k%d", i), tableJoinPlan{})
	}
	if c.Len() != DefaultPlanCacheSize {
		t.Fatalf("len = %d, want %d", c.Len(), DefaultPlanCacheSize)
	}
}

// TestCachedTableJoinHitMissEpoch drives the Runner-side wrapper
// against a real layout: cold miss, warm hit replaying an identical
// decision, and a guaranteed miss after the epoch hook reports a bump
// — the stale entry must be unaddressable.
func TestCachedTableJoinHitMissEpoch(t *testing.T) {
	f := setup(t, true)
	epochs := map[string]uint64{}
	cache := NewPlanCache(0)
	f.runner.Cache = cache
	f.runner.Epoch = func(table string) uint64 { return epochs[table] }

	lscan := &Scan{Table: f.line, Preds: []predicate.Predicate{
		predicate.NewCmp(2, predicate.LT, value.NewInt(1500)),
	}}
	oscan := &Scan{Table: f.ord}

	fresh := f.runner.planTableJoin(lscan, 0, oscan, 0)
	cold := f.runner.cachedTableJoin(lscan, 0, oscan, 0)
	if !reflect.DeepEqual(cold, fresh) {
		t.Fatalf("cold cached decision %+v != fresh %+v", cold, fresh)
	}
	if f.runner.CacheMisses != 1 || f.runner.CacheHits != 0 {
		t.Fatalf("after cold: %d hits / %d misses, want 0/1", f.runner.CacheHits, f.runner.CacheMisses)
	}
	warm := f.runner.cachedTableJoin(lscan, 0, oscan, 0)
	if !reflect.DeepEqual(warm, fresh) {
		t.Fatalf("warm cached decision %+v != fresh %+v", warm, fresh)
	}
	if f.runner.CacheHits != 1 {
		t.Fatalf("after warm: %d hits, want 1", f.runner.CacheHits)
	}

	// Epoch bump on either side invalidates by making the key
	// unreachable.
	epochs["lineitem"]++
	f.runner.cachedTableJoin(lscan, 0, oscan, 0)
	if f.runner.CacheMisses != 2 {
		t.Fatalf("after lineitem bump: %d misses, want 2", f.runner.CacheMisses)
	}
	epochs["orders"]++
	f.runner.cachedTableJoin(lscan, 0, oscan, 0)
	if f.runner.CacheMisses != 3 {
		t.Fatalf("after orders bump: %d misses, want 3", f.runner.CacheMisses)
	}
	// Back at the bumped epochs, the refreshed entries hit again.
	f.runner.cachedTableJoin(lscan, 0, oscan, 0)
	if f.runner.CacheHits != 2 {
		t.Fatalf("post-bump repeat: %d hits, want 2", f.runner.CacheHits)
	}
}

// TestCachedCompileMatchesFresh is the stale-fragment oracle at the
// whole-compile level: a Runner with a warm cache must produce the
// same rows and the same strategy report as a cache-less Runner over
// the same layout.
func TestCachedCompileMatchesFresh(t *testing.T) {
	f := setup(t, true)
	plan := func() Node {
		return &Join{
			Left: &Scan{Table: f.line, Preds: []predicate.Predicate{
				predicate.NewCmp(2, predicate.LT, value.NewInt(1500)),
			}},
			Right: &Scan{Table: f.ord},
			LCol:  0, RCol: 0,
		}
	}
	freshRows, freshRep, err := f.runner.Run(plan())
	if err != nil {
		t.Fatal(err)
	}

	f.runner.Cache = NewPlanCache(0)
	// Twice: first warms the cache, second replays from it.
	if _, _, err := f.runner.Run(plan()); err != nil {
		t.Fatal(err)
	}
	cachedRows, cachedRep, err := f.runner.Run(plan())
	if err != nil {
		t.Fatal(err)
	}
	if f.runner.CacheHits == 0 {
		t.Fatal("second cached run never hit — oracle compares nothing")
	}
	sameRows(t, cachedRows, freshRows, "cached compile")
	if len(cachedRep.Joins) != len(freshRep.Joins) {
		t.Fatalf("join report length %d vs %d", len(cachedRep.Joins), len(freshRep.Joins))
	}
	for i := range cachedRep.Joins {
		if cachedRep.Joins[i].Strategy != freshRep.Joins[i].Strategy {
			t.Errorf("join %d strategy %q vs fresh %q",
				i, cachedRep.Joins[i].Strategy, freshRep.Joins[i].Strategy)
		}
	}
}

// TestPlanKeyDiscriminates: every input the join decision depends on
// must show up in the key — tables, columns, predicates, epochs, and
// the runner knobs that steer the cost comparison.
func TestPlanKeyDiscriminates(t *testing.T) {
	f := setup(t, true)
	epochs := map[string]uint64{}
	f.runner.Epoch = func(table string) uint64 { return epochs[table] }
	lscan := func(preds ...predicate.Predicate) *Scan {
		return &Scan{Table: f.line, Preds: preds}
	}
	oscan := &Scan{Table: f.ord}
	base := f.runner.planKey(lscan(), 0, oscan, 0)

	seen := map[string]string{"base": base}
	check := func(label, key string) {
		t.Helper()
		for prev, k := range seen {
			if k == key {
				t.Errorf("%s key collides with %s: %q", label, prev, key)
			}
		}
		seen[label] = key
	}
	check("lcol", f.runner.planKey(lscan(), 1, oscan, 0))
	check("rcol", f.runner.planKey(lscan(), 0, oscan, 1))
	check("pred", f.runner.planKey(lscan(predicate.NewCmp(2, predicate.LT, value.NewInt(9))), 0, oscan, 0))
	check("pred-value", f.runner.planKey(lscan(predicate.NewCmp(2, predicate.LT, value.NewInt(10))), 0, oscan, 0))
	check("rtable", f.runner.planKey(lscan(), 0, &Scan{Table: f.cust}, 0))

	epochs["lineitem"] = 1
	check("epoch", f.runner.planKey(lscan(), 0, oscan, 0))
	epochs["lineitem"] = 0

	f.runner.ForceShuffle = true
	check("force-shuffle", f.runner.planKey(lscan(), 0, oscan, 0))
	f.runner.ForceShuffle = false

	f.runner.BudgetBlocks = 99
	check("budget", f.runner.planKey(lscan(), 0, oscan, 0))
}

// TestPlanCacheConcurrent hammers one shared cache from many Runners
// (the serving pattern: a fresh Runner per query, one cache per
// service). Run with -race; correctness is every lookup returning the
// same decision.
func TestPlanCacheConcurrent(t *testing.T) {
	f := setup(t, true)
	cache := NewPlanCache(8)
	lscan := &Scan{Table: f.line}
	oscan := &Scan{Table: f.ord}
	want := f.runner.planTableJoin(lscan, 0, oscan, 0)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewRunner(f.runner.Ex, f.runner.Model)
			r.Cache = cache
			for i := 0; i < 50; i++ {
				got := r.cachedTableJoin(lscan, 0, oscan, 0)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent lookup diverged: %+v", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := cache.Stats()
	if hits+misses != 8*50 {
		t.Fatalf("lookups = %d, want %d", hits+misses, 8*50)
	}
}
