package planner

import (
	"testing"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
)

func TestSpillEstimateZeroWithoutBudget(t *testing.T) {
	ex := exec.New(dfs.NewStore(2, 1, 1), &cluster.Meter{})
	r := NewRunner(ex, cluster.Default())
	if got := r.spillEstimate(1_000_000, 1_000_000); got != 0 {
		t.Errorf("unbudgeted spill estimate = %v, want 0", got)
	}
}

func TestSpillEstimateGrowsAsBudgetShrinks(t *testing.T) {
	ex := exec.New(dfs.NewStore(2, 1, 1), &cluster.Meter{})
	r := NewRunner(ex, cluster.Default())
	const buildRows, probeRows = 10_000, 50_000
	full := int64(buildRows) * estRowBytes
	ex.Mem = exec.NewMemBudget(full * 2)
	if got := r.spillEstimate(buildRows, probeRows); got != 0 {
		t.Errorf("build fits budget but estimate = %v", got)
	}
	ex.Mem = exec.NewMemBudget(full / 2)
	half := r.spillEstimate(buildRows, probeRows)
	ex.Mem = exec.NewMemBudget(full / 8)
	eighth := r.spillEstimate(buildRows, probeRows)
	if !(half > 0 && eighth > half) {
		t.Errorf("spill estimate not monotone: half=%v eighth=%v", half, eighth)
	}
	// Bounded by pricing the whole input through the spill factor.
	max := cluster.Default().SpillRowFactor * float64(buildRows+probeRows)
	if eighth >= max {
		t.Errorf("estimate %v should stay under the all-spilled bound %v", eighth, max)
	}
}

func TestShuffleEstimateIncludesSpillTerm(t *testing.T) {
	f := setup(t, false)
	refs := f.line.AllRefs(nil)
	base := f.runner.estimateShuffle(refs, refs)
	f.runner.Ex.Mem = exec.NewMemBudget(1024) // starved: nearly everything spills
	budgeted := f.runner.estimateShuffle(refs, refs)
	if budgeted <= base {
		t.Errorf("budgeted shuffle estimate %v not above unbudgeted %v", budgeted, base)
	}
}
