package planner

import (
	"testing"

	"adaptdb/internal/core"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// distSetup builds the shared fixture with the node fabric enabled, so
// Compile takes the distributed path.
func distSetup(t *testing.T, coPart bool) *fixture {
	f := setup(t, coPart)
	f.runner.Ex.EnableNodes(1)
	return f
}

// TestDistributedShuffleJoinOracle: a randomly partitioned two-table
// join compiles to per-node scans + hash exchanges + node-local joins
// and still produces exactly the oracle rows; the exchange meters the
// movement.
func TestDistributedShuffleJoinOracle(t *testing.T) {
	f := distSetup(t, false)
	// Random layouts can still win an opportunistic hyper-join off tight
	// zone maps; pin the strategy so the exchange path is what runs.
	f.runner.ForceShuffle = true
	plan := &Join{
		Left:  &Scan{Table: f.line},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	f.runner.Ex.Nodes().Flush()
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "distributed shuffle")
	if len(rep.Joins) != 1 || rep.Joins[0].Strategy != StratShuffle {
		t.Fatalf("unexpected report: %+v", rep.Joins)
	}
	if rep.Joins[0].OutputRows != len(rows) {
		t.Fatalf("report output rows %d, want %d", rep.Joins[0].OutputRows, len(rows))
	}
	c := f.meter.Snapshot()
	if c.ExchRows() != float64(len(f.lrows)+len(f.orows)) {
		t.Fatalf("shuffle exchanged %v rows, want both sides = %d", c.ExchRows(), len(f.lrows)+len(f.orows))
	}
	if c.ShuffleRows != 0 {
		t.Fatalf("distributed path must not use call-site shuffle charges, got %v", c.ShuffleRows)
	}
}

// TestDistributedHyperJoinZeroExchange: co-partitioned tables take the
// co-located hyper-join — identical rows, and NOT ONE row crosses an
// exchange (the acceptance criterion for locality-aware execution).
func TestDistributedHyperJoinZeroExchange(t *testing.T) {
	f := distSetup(t, true)
	plan := &Join{
		Left:  &Scan{Table: f.line},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	f.runner.Ex.Nodes().Flush()
	sameRows(t, rows, oracleJoin(f.lrows, f.orows, 0, 0), "distributed hyper")
	if len(rep.Joins) != 1 || rep.Joins[0].Strategy != StratHyper {
		t.Fatalf("expected hyper join on co-partitioned tables, got %+v", rep.Joins)
	}
	c := f.meter.Snapshot()
	if got := c.ExchRows(); got != 0 {
		t.Fatalf("co-located hyper-join moved %v rows through exchanges, want 0", got)
	}
}

// TestDistributedSemiShuffleBroadcast: an intermediate ⋈ base-table
// join against a co-partitioned base table exchanges only one side.
func TestDistributedSemiShuffleBroadcast(t *testing.T) {
	f := distSetup(t, true)
	// The semi-shuffle needs a tree on the join attribute; the shared
	// fixture's customer is randomly partitioned, so load a
	// co-partitioned copy.
	cust, err := core.Load(f.store, "customer_co", custSch, f.crows,
		core.LoadOptions{RowsPerBlock: 16, Seed: 3, JoinAttr: 0})
	if err != nil {
		t.Fatal(err)
	}
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1200))}
	inner := &Join{
		Left:  &Scan{Table: f.line, Preds: preds},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	plan := &Join{
		Left:  inner,
		Right: &Scan{Table: cust},
		LCol:  lineSch.NumCols() + 1, RCol: 0,
	}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	f.runner.Ex.Nodes().Flush()
	lo := oracleJoin(filter(f.lrows, preds), f.orows, 0, 0)
	want := oracleJoin(lo, f.crows, lineSch.NumCols()+1, 0)
	sameRows(t, rows, want, "distributed semi-shuffle")
	if len(rep.Joins) != 2 || rep.Joins[1].Strategy != StratSemiShuffle {
		t.Fatalf("unexpected report: %+v", rep.Joins)
	}
	c := f.meter.Snapshot()
	n := float64(f.runner.Ex.Nodes().N())
	// The intermediate is the big side here, so the compiler broadcasts
	// the small customer table (N copies) and deals the intermediate
	// across the nodes (each row crosses once); the inner hyper-join is
	// co-located and moves nothing.
	wantExch := n*float64(len(f.crows)) + float64(len(lo))
	if c.ExchRows() != wantExch {
		t.Fatalf("semi-shuffle exchanged %v rows, want %v (%v×%d cust + %d dealt)",
			c.ExchRows(), wantExch, n, len(f.crows), len(lo))
	}
	if naive := float64(len(lo)) * n; wantExch >= naive {
		t.Fatalf("broadcast-small/deal-big (%v rows) should beat naive broadcast (%v)", wantExch, naive)
	}
}

// TestDistributedSemiShuffleFallsBackToShuffle: when the base table has
// no tree on the join attribute, the intermediate ⋈ table join
// hash-exchanges BOTH sides and reports shuffle — mirroring the
// centralized compiler's strategy and pricing.
func TestDistributedSemiShuffleFallsBackToShuffle(t *testing.T) {
	f := distSetup(t, true)
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(1200))}
	inner := &Join{
		Left:  &Scan{Table: f.line, Preds: preds},
		Right: &Scan{Table: f.ord},
		LCol:  0, RCol: 0,
	}
	plan := &Join{
		Left:  inner,
		Right: &Scan{Table: f.cust}, // randomly partitioned: no tree on custkey
		LCol:  lineSch.NumCols() + 1, RCol: 0,
	}
	rows, rep, err := f.runner.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	f.runner.Ex.Nodes().Flush()
	lo := oracleJoin(filter(f.lrows, preds), f.orows, 0, 0)
	want := oracleJoin(lo, f.crows, lineSch.NumCols()+1, 0)
	sameRows(t, rows, want, "semi-shuffle fallback")
	if len(rep.Joins) != 2 || rep.Joins[1].Strategy != StratShuffle {
		t.Fatalf("no tree on the join attribute should report shuffle, got %+v", rep.Joins)
	}
	// Both sides crossed the exchanges: every intermediate row plus
	// every customer row, exactly once each.
	c := f.meter.Snapshot()
	if got, want := c.ExchRows(), float64(len(lo)+len(f.crows)); got != want {
		t.Fatalf("fallback shuffle exchanged %v rows, want %v", got, want)
	}
}

// TestDistributedMatchesCentralized: the same plans on the same data
// produce identical result multisets with and without the node fabric,
// across co-partitioned and random layouts.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, coPart := range []bool{true, false} {
		cen := setup(t, coPart)
		dist := distSetup(t, coPart)
		preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(2000))}
		for name, plan := range map[string]func(f *fixture) Node{
			"two-table": func(f *fixture) Node {
				return &Join{Left: &Scan{Table: f.line, Preds: preds}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0}
			},
			"three-table": func(f *fixture) Node {
				return &Join{
					Left:  &Join{Left: &Scan{Table: f.line, Preds: preds}, Right: &Scan{Table: f.ord}, LCol: 0, RCol: 0},
					Right: &Scan{Table: f.cust},
					LCol:  lineSch.NumCols() + 1, RCol: 0,
				}
			},
		} {
			cRows, _, err := cen.runner.Run(plan(cen))
			if err != nil {
				t.Fatalf("%s centralized: %v", name, err)
			}
			dRows, _, err := dist.runner.Run(plan(dist))
			if err != nil {
				t.Fatalf("%s distributed: %v", name, err)
			}
			sameRows(t, dRows, cRows, name)
		}
	}
}
