// Package planner implements AdaptDB's query planner (§6): it lowers a
// join-plan tree of arbitrary depth into one pipelined DAG of
// exec.Operators, picking hyper-join, shuffle join, or a combination
// per join with the §4.2 cost model — strategy choices are operator
// choices, decided at compile time from block zone maps alone.
//
// Compile is the engine: scans become TableScanOps with predicate
// pushdown, base-table joins become HyperJoinOp / JoinOp / Concat
// compositions, and multi-relation joins stream their sub-plan DAGs
// straight into the next join's build side (§4.3's semi-shuffle: only
// the intermediate shuffles when the base table has a tree on the join
// attribute). Nothing on the compiled path materializes a whole-table
// slice; Run is the materializing Collect adapter kept for callers
// with small result sets. Every operator is wrapped in exec.Instrument,
// so a drained Compiled DAG reports per-operator rows/batches/time and
// a per-join strategy Report. internal/session drives Compile for each
// query of an adaptive stream.
//
// The planner's three cases for a base-table join (§6):
//
//  1. both tables have one tree partitioned on the join attribute —
//     hyper-join;
//  2. one or both tables are mid smooth-repartitioning (multiple trees) —
//     a combination of hyper-join over the co-partitioned portions and
//     shuffle join over the residual portions;
//  3. no tree on the join attribute — shuffle join, unless the upfront
//     partitioning happens to make hyper-join cheaper anyway.
//
// Paper mapping:
//
//   - §4.2 — estimateHyper / estimateShuffle price the strategies in
//     block reads before compiling the winner.
//   - §4.3 — compileSemiShuffle streams a base table through the probe
//     side of a pipelined join while only the materialized intermediate
//     shuffles.
//   - §5.4 — planTableJoin's cost comparison that decides whether a
//     combination join beats a plain shuffle mid-transition.
//   - §6 — Compile walks the plan tree; the Report records per-join
//     strategies the experiments aggregate.
//
// Whatever strategy wins, the data plane underneath is the same
// parallel radix-partitioned hash join core (exec/joinht.go), so
// strategy choice changes I/O metering and block schedules, never join
// semantics: output column order follows the plan's (left, right) via
// JoinOptions.BuildIsRight or exec.SwapSides, and NULL join keys never
// match.
package planner
