// Package planner implements AdaptDB's query planner (§6): given a join
// plan over tables, pick hyper-join, shuffle join, or a combination per
// join using the §4.2 cost model, and execute multi-relation joins per
// §4.3 (shuffling only the intermediate when the base table's tree is
// partitioned on the join attribute).
//
// The planner's three cases for a base-table join (§6):
//
//  1. both tables have one tree partitioned on the join attribute —
//     hyper-join;
//  2. one or both tables are mid smooth-repartitioning (multiple trees) —
//     a combination of hyper-join over the co-partitioned portions and
//     shuffle join over the residual portions;
//  3. no tree on the join attribute — shuffle join, unless the upfront
//     partitioning happens to make hyper-join cheaper anyway.
//
// Paper mapping:
//
//   - §4.2 — estimateHyper / estimateShuffle price the strategies in
//     block reads before running the winner.
//   - §4.3 — semiShuffleJoin streams a base table through the probe
//     side of a pipelined join while only the materialized intermediate
//     shuffles.
//   - §5.4 — the cost comparison that decides whether a combination
//     join beats a plain shuffle mid-transition.
//   - §6 — Runner walks the plan tree, recording per-join strategy
//     reports the experiments aggregate.
//
// Execution is delegated to internal/exec; the planner composes its
// batched operators (TableScanOp, JoinOp, HyperJoin) per the strategy
// decision. Whatever strategy wins, the data plane underneath is the
// same parallel radix-partitioned hash join core (exec/joinht.go), so
// strategy choice changes I/O metering and block schedules, never join
// semantics: output column order follows the plan's (left, right) via
// JoinOptions.BuildIsRight, and NULL join keys never match.
package planner
