// Spec lowering: the pass that turns a bound query.Spec — an n-way
// join graph with pushdown predicates and optional grouping — into the
// planner's internal Node IR and on into the operator DAG. The heart is
// a greedy zone-map-driven join ordering (cheapest-edge-first): with no
// statistics beyond block metadata, join the two cheapest tables first
// and repeatedly fold in the cheapest table adjacent to the joined set.
// Greedy ordering over pruned zone-map cardinalities is exactly the
// regime where simple beats clever — the estimates are coarse, but they
// are coarse for every ordering, and the greedy choice exploits the one
// signal that is reliable: predicate-pruned row counts.
//
// The ordering pass also proves emptiness early: if any table's pruned
// ref set is empty, or any join edge's zone-map unions on the two sides
// cannot overlap, the whole query provably yields nothing and compiles
// to the empty stream (a global aggregate still emits its one row).
//
// Join-graph edges beyond the ordered left-deep tree — cyclic closing
// edges, and the extra attribute pairs of multi-attribute edges —
// become residual equality filters (exec.WhereColsEq) over the joined
// stream. When greedy ordering permutes the tables, a final projection
// restores table declaration order, so the ordering is invisible in the
// results: only the join strategies and intermediate sizes change.
//
// Orderings are memoized in the PlanCache next to the per-join strategy
// decisions, keyed by the spec fingerprint plus each table's
// partitioning epoch and the runner knobs — the same epoch-invalidation
// contract as table-join plans.
package planner

import (
	"strconv"
	"strings"

	"adaptdb/internal/core"
	"adaptdb/internal/exec"
	"adaptdb/internal/predicate"
	"adaptdb/internal/query"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// specOrder is the memoized ordering decision for one bound spec: the
// table sequence of the left-deep join tree and, for each table after
// the first, the join-graph edge that connects it to the prefix. empty
// marks a query zone maps proved produces no rows.
type specOrder struct {
	empty bool
	seq   []int
	edges []int
}

// CompileSpec lowers a bound spec to an executable operator DAG:
// greedy (or, under FixedOrder, declaration-order) join ordering, the
// existing per-join strategy machinery underneath, residual equality
// filters for graph edges the tree did not consume, and hash
// aggregation or a declaration-order projection on top.
func (r *Runner) CompileSpec(b *query.Bound) (*Compiled, error) {
	ord := r.cachedSpecOrder(b)

	if ord.empty {
		c := &Compiled{Report: &Report{}}
		root := exec.Operator(exec.Empty())
		if b.Grouped() {
			// A provably-empty input still owes the scalar-aggregate row.
			root = r.instrument(c, "groupby", r.Ex.GroupByOp(root, r.groupSpec(b, declOffsets(b))), nil)
		}
		c.Root = root
		return c, nil
	}

	node, offs := r.lowerSpec(b, ord)
	c, err := r.Compile(node)
	if err != nil {
		return nil, err
	}
	root := c.Root

	if pairs := residualPairs(b, ord, offs); len(pairs) > 0 {
		root = r.instrument(c, "residual-filter", exec.WhereColsEq(root, pairs), nil)
	}

	switch {
	case b.Grouped():
		root = r.instrument(c, "groupby", r.Ex.GroupByOp(root, r.groupSpec(b, offs)), nil)
	case permuted(ord.seq):
		// Greedy ordering moved tables around; project back to table
		// declaration order so results are ordering-independent.
		root = r.instrument(c, "project", exec.Project(root, declColumns(b, offs)), nil)
	}
	c.Root = root
	return c, nil
}

// RunSpec compiles and materializes a bound spec — the spec-level
// sibling of Run.
func (r *Runner) RunSpec(b *query.Bound) ([]tuple.Tuple, *Report, error) {
	c, err := r.CompileSpec(b)
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Collect(c.Root)
	if err != nil {
		return nil, c.Report, err
	}
	return rows, c.Report, nil
}

// EstimateSpecFootprint prices a spec's peak operator memory the same
// way EstimateFootprint prices a Node plan, over the ordering this
// runner would pick. Aggregation state is not priced — group counts are
// unknowable from zone maps; the budget charge at runtime is advisory.
func (r *Runner) EstimateSpecFootprint(b *query.Bound) int64 {
	ord := r.cachedSpecOrder(b)
	if ord.empty {
		return 0
	}
	node, _ := r.lowerSpec(b, ord)
	return r.EstimateFootprint(node)
}

// lowerSpec builds the left-deep Node tree for a decided ordering and
// returns it with each table's column offset in the joined output.
func (r *Runner) lowerSpec(b *query.Bound, ord specOrder) (Node, map[int]int) {
	offs := make(map[int]int, len(ord.seq))
	width := 0
	for _, ti := range ord.seq {
		offs[ti] = width
		width += b.Tables[ti].Table.Schema.NumCols()
	}
	scan := func(ti int) *Scan {
		return &Scan{Table: b.Tables[ti].Table, Preds: b.Tables[ti].Preds}
	}
	var node Node = scan(ord.seq[0])
	placed := map[int]bool{ord.seq[0]: true}
	for i := 1; i < len(ord.seq); i++ {
		ti := ord.seq[i]
		e := b.Joins[ord.edges[i-1]]
		// Orient the edge: one endpoint is already in the prefix.
		pTbl, pCol, tCol := e.L, e.LCols[0], e.RCols[0]
		if !placed[pTbl] {
			pTbl, pCol, tCol = e.R, e.RCols[0], e.LCols[0]
		}
		node = &Join{Left: node, Right: scan(ti), LCol: offs[pTbl] + pCol, RCol: tCol}
		placed[ti] = true
	}
	return node, offs
}

// residualPairs lists the global column pairs the joined stream must
// still filter on: every attribute pair of edges the tree skipped
// (cyclic closing edges) and the second-and-later pairs of
// multi-attribute tree edges (the tree consumed pair 0).
func residualPairs(b *query.Bound, ord specOrder, offs map[int]int) [][2]int {
	used := make(map[int]bool, len(ord.edges))
	for _, ei := range ord.edges {
		used[ei] = true
	}
	var pairs [][2]int
	for ei, e := range b.Joins {
		start := 0
		if used[ei] {
			start = 1
		}
		for ai := start; ai < len(e.LCols); ai++ {
			pairs = append(pairs, [2]int{offs[e.L] + e.LCols[ai], offs[e.R] + e.RCols[ai]})
		}
	}
	return pairs
}

// groupSpec maps the bound grouping clauses onto the joined stream's
// global column indexes.
func (r *Runner) groupSpec(b *query.Bound, offs map[int]int) exec.GroupBySpec {
	gs := exec.GroupBySpec{}
	for _, c := range b.GroupBy {
		gs.GroupCols = append(gs.GroupCols, offs[c.Table]+c.Col)
	}
	for _, a := range b.Aggs {
		as := exec.AggSpec{Fn: aggFn(a.Func), Col: -1}
		if a.Table >= 0 {
			as.Col = offs[a.Table] + a.Col
		}
		gs.Aggs = append(gs.Aggs, as)
	}
	return gs
}

func aggFn(f query.AggFunc) exec.AggFn {
	switch f {
	case query.AggSum:
		return exec.AggSum
	case query.AggMin:
		return exec.AggMin
	case query.AggMax:
		return exec.AggMax
	case query.AggAvg:
		return exec.AggAvg
	}
	return exec.AggCount
}

// declOffsets lays the tables out in declaration order — the offsets
// of the provably-empty path, where no join tree exists.
func declOffsets(b *query.Bound) map[int]int {
	offs := make(map[int]int, len(b.Tables))
	width := 0
	for i, t := range b.Tables {
		offs[i] = width
		width += t.Table.Schema.NumCols()
	}
	return offs
}

// declColumns lists every table's columns in declaration order, as
// global indexes of the (possibly permuted) joined stream.
func declColumns(b *query.Bound, offs map[int]int) []int {
	var cols []int
	for i, t := range b.Tables {
		for c := 0; c < t.Table.Schema.NumCols(); c++ {
			cols = append(cols, offs[i]+c)
		}
	}
	return cols
}

func permuted(seq []int) bool {
	for i, ti := range seq {
		if ti != i {
			return true
		}
	}
	return false
}

// planSpecOrder decides the join order from zone-map metadata alone.
// Greedy: start with the edge whose two tables' pruned cardinalities
// sum smallest (the cheapest first join, smaller side leftmost), then
// repeatedly fold in the cheapest unjoined table adjacent to the
// joined set. FixedOrder instead walks tables in declaration order
// (lowest-index adjacent table next) — the baseline the benchmarks
// compare greedy against. Both orders early-exit to the empty plan
// when any table prunes to zero blocks or any edge's zone-map unions
// cannot overlap.
func (r *Runner) planSpecOrder(b *query.Bound) specOrder {
	n := len(b.Tables)
	refs := make([][]core.BlockRef, n)
	ests := make([]int, n)
	for i, t := range b.Tables {
		refs[i] = r.Ex.TableRefs(t.Table, t.Preds)
		ests[i] = refRows(refs[i])
		if ests[i] == 0 {
			return specOrder{empty: true}
		}
	}
	for _, e := range b.Joins {
		for ai := range e.LCols {
			lu := unionRange(refs[e.L], e.LCols[ai])
			ru := unionRange(refs[e.R], e.RCols[ai])
			if !lu.Overlaps(ru) {
				// The two sides' value ranges are disjoint: no row pair can
				// ever satisfy this edge, so the join is provably empty.
				return specOrder{empty: true}
			}
		}
	}
	if n == 1 {
		return specOrder{seq: []int{0}}
	}

	ord := specOrder{}
	placed := make([]bool, n)
	place := func(ti, ei int) {
		ord.seq = append(ord.seq, ti)
		placed[ti] = true
		if ei >= 0 {
			ord.edges = append(ord.edges, ei)
		}
	}

	if r.FixedOrder {
		place(0, -1)
	} else {
		// Cheapest first edge; the smaller side becomes the leftmost scan.
		best := -1
		for ei, e := range b.Joins {
			if best < 0 || ests[e.L]+ests[e.R] < ests[b.Joins[best].L]+ests[b.Joins[best].R] {
				best = ei
			}
		}
		first, second := b.Joins[best].L, b.Joins[best].R
		if ests[second] < ests[first] {
			first, second = second, first
		}
		place(first, -1)
		place(second, best)
	}

	for len(ord.seq) < n {
		bestT, bestE := -1, -1
		for ei, e := range b.Joins {
			var cand int
			switch {
			case placed[e.L] && !placed[e.R]:
				cand = e.R
			case placed[e.R] && !placed[e.L]:
				cand = e.L
			default:
				continue
			}
			better := bestT < 0
			if !better {
				if r.FixedOrder {
					better = cand < bestT
				} else {
					better = ests[cand] < ests[bestT]
				}
			}
			if better {
				bestT, bestE = cand, ei
			}
		}
		// Bind guarantees connectivity, so an adjacent table always exists.
		place(bestT, bestE)
	}
	return ord
}

// unionRange folds the blocks' zone-map intervals on col into one
// covering interval for the whole pruned ref set.
func unionRange(refs []core.BlockRef, col int) predicate.Range {
	var u predicate.Range
	for i, ref := range refs {
		rg := ref.JoinRange(col)
		if i == 0 {
			u = rg
			continue
		}
		u = rangeUnion(u, rg)
	}
	return u
}

// rangeUnion is the smallest interval covering both inputs: bounds
// survive only when both sides have them, ties stay open only when
// both endpoints are open.
func rangeUnion(a, b predicate.Range) predicate.Range {
	var out predicate.Range
	if a.HasLo && b.HasLo {
		out.HasLo = true
		switch c := value.Compare(a.Lo, b.Lo); {
		case c < 0:
			out.Lo, out.LoOpen = a.Lo, a.LoOpen
		case c > 0:
			out.Lo, out.LoOpen = b.Lo, b.LoOpen
		default:
			out.Lo, out.LoOpen = a.Lo, a.LoOpen && b.LoOpen
		}
	}
	if a.HasHi && b.HasHi {
		out.HasHi = true
		switch c := value.Compare(a.Hi, b.Hi); {
		case c > 0:
			out.Hi, out.HiOpen = a.Hi, a.HiOpen
		case c < 0:
			out.Hi, out.HiOpen = b.Hi, b.HiOpen
		default:
			out.Hi, out.HiOpen = a.Hi, a.HiOpen && b.HiOpen
		}
	}
	return out
}

// cachedSpecOrder memoizes planSpecOrder in the plan cache under the
// spec fingerprint + table epochs + runner knobs. The ordering depends
// on pruned cardinalities and zone maps, both functions of (layout
// epoch, predicates), so the epoch-invalidation contract of table-join
// plans carries over unchanged.
func (r *Runner) cachedSpecOrder(b *query.Bound) specOrder {
	if r.Cache == nil {
		return r.planSpecOrder(b)
	}
	key := r.specKey(b)
	if v, ok := r.Cache.getAny(key); ok {
		if ord, typed := v.(specOrder); typed {
			r.CacheHits++
			return ord
		}
	}
	ord := r.planSpecOrder(b)
	r.Cache.putAny(key, ord)
	r.CacheMisses++
	return ord
}

// specKey renders everything planSpecOrder's answer depends on: the
// spec's logical fingerprint (tables, aliases, predicates, the full
// join graph, grouping — see query.Bound.Fingerprint), each table's
// partitioning epoch, and the runner/executor knobs that steer
// ordering and the downstream strategy decisions.
func (r *Runner) specKey(b *query.Bound) string {
	var sb strings.Builder
	sb.Grow(192)
	sb.WriteString("S|")
	sb.WriteString(b.Fingerprint())
	sb.WriteByte('|')
	for i, t := range b.Tables {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.Table.Name)
		sb.WriteByte('@')
		sb.WriteString(strconv.FormatUint(r.epochOf(t.Table.Name), 10))
	}
	sb.WriteByte('|')
	if r.ForceShuffle {
		sb.WriteByte('F')
	}
	if r.Ex.NoPrune {
		sb.WriteByte('N')
	}
	if r.FixedOrder {
		sb.WriteByte('O')
	}
	sb.WriteString(strconv.Itoa(r.budget()))
	sb.WriteByte(':')
	sb.WriteString(strconv.FormatInt(r.Ex.MemLimit(), 10))
	return sb.String()
}
