// The plan→Operator compiler: turns a plan tree of arbitrary depth into
// one executable DAG of exec.Operators, with the optimizer-selected
// join strategies (hyper / shuffle / combination / semi-shuffle) chosen
// per join at compile time from block metadata alone — no slice
// materialization anywhere on the path. Runner.Run is now a Collect
// adapter over Compile; sessions (internal/session) drain the DAG
// batch by batch instead.
package planner

import (
	"fmt"

	"adaptdb/internal/core"
	"adaptdb/internal/exec"
)

// Compiled is an executable operator DAG plus the report its run will
// fill in. Report entries (strategy per join) are fixed at compile
// time; row counts and hyper-join stats land when the corresponding
// operator's stream is drained — after Collect, Count, or a manual
// drain of Root, the Report is complete.
type Compiled struct {
	Root   exec.Operator
	Report *Report
	ops    []*exec.Instrumented
}

// OpStats snapshots the per-operator counters (rows, batches,
// inclusive wall time) in compile order — scans and joins alike. Call
// after draining Root; partial drains yield partial counts.
func (c *Compiled) OpStats() []exec.OpStats {
	out := make([]exec.OpStats, len(c.ops))
	for i, op := range c.ops {
		out[i] = op.Stats()
	}
	return out
}

// Compile lowers a plan tree into a pipelined operator DAG. Join
// strategies are decided per join with the §5.4 cost comparison over
// block zone maps; every operator is instrumented, and the returned
// Compiled's Report mirrors the legacy Run report (same entries, same
// post-order) once the DAG is drained. The caller owns the lifecycle
// of Root (Open/Next/Close, or exec.Collect / exec.Count).
func (r *Runner) Compile(n Node) (*Compiled, error) {
	c := &Compiled{Report: &Report{}}
	if fb := r.Ex.ExecFabric(); fb != nil {
		// Distributed regime: per-node fragments wired with exchanges
		// (distributed.go) over whatever fabric is installed — simulated
		// NodeSet or TCP; the root gathers every node's stream.
		d, err := r.compileDist(n, c)
		if err != nil {
			return nil, err
		}
		c.Root = d.toGlobal(fb)
		return c, nil
	}
	op, err := r.compile(n, c)
	if err != nil {
		return nil, err
	}
	c.Root = op
	return c, nil
}

// instrument wraps op with stats collection and registers it with the
// compiled DAG.
func (r *Runner) instrument(c *Compiled, label string, op exec.Operator, onDone func(exec.OpStats)) exec.Operator {
	in := exec.Instrument(label, op, onDone)
	c.ops = append(c.ops, in)
	return in
}

func (r *Runner) compile(n Node, c *Compiled) (exec.Operator, error) {
	switch nd := n.(type) {
	case *Scan:
		label := "scan(" + nd.Table.Name + ")"
		return r.instrument(c, label, r.Ex.TableScanOp(nd.Table, nd.Preds), nil), nil
	case *Join:
		return r.compileJoin(nd, c)
	default:
		return nil, fmt.Errorf("planner: unknown node %T", n)
	}
}

func (r *Runner) compileJoin(j *Join, c *Compiled) (exec.Operator, error) {
	lScan, lIsScan := j.Left.(*Scan)
	rScan, rIsScan := j.Right.(*Scan)
	switch {
	case lIsScan && rIsScan:
		return r.compileTableJoin(j, lScan, rScan, c)
	case rIsScan:
		// Intermediate ⋈ base table (§4.3): the sub-plan streams into the
		// build side, the base table streams through the probe side.
		build, err := r.compile(j.Left, c)
		if err != nil {
			return nil, err
		}
		return r.compileSemiShuffle(c, build, r.estimateRows(j.Left), j.LCol, rScan, j.RCol, false), nil
	case lIsScan:
		build, err := r.compile(j.Right, c)
		if err != nil {
			return nil, err
		}
		return r.compileSemiShuffle(c, build, r.estimateRows(j.Right), j.RCol, lScan, j.LCol, true), nil
	default:
		// Two intermediates: both sub-DAGs stream into a pipelined hash
		// join, charged at the cheaper intermediate-shuffle rate. Build
		// on the side the metadata estimates smaller (q8's bushy plan
		// builds on orders⋈customer, streams lineitem⋈part through).
		lOp, err := r.compile(j.Left, c)
		if err != nil {
			return nil, err
		}
		rOp, err := r.compile(j.Right, c)
		if err != nil {
			return nil, err
		}
		opts := exec.JoinOptions{BuildCharge: exec.ChargeIntermediate, ProbeCharge: exec.ChargeIntermediate}
		build, probe := lOp, rOp
		bCol, pCol := j.LCol, j.RCol
		lEst, rEst := r.estimateRows(j.Left), r.estimateRows(j.Right)
		bEst := lEst
		if rEst < lEst {
			build, probe = rOp, lOp
			bCol, pCol = j.RCol, j.LCol
			opts.BuildIsRight = true
			bEst = rEst
		}
		opts.BuildRowsEst = r.estBuildRows(bEst)
		fill := r.reportJoin(c, JoinReport{Strategy: StratShuffle}, nil)
		op := r.Ex.JoinOp(build, bCol, probe, pCol, opts)
		return r.instrument(c, "join[shuffle](intermediates)", op, fill), nil
	}
}

// reportJoin appends a report entry for a join being compiled and
// returns the completion hook that fills its output row count (and, via
// hyper, the hyper-join statistics) once the join's stream has drained.
func (r *Runner) reportJoin(c *Compiled, jr JoinReport, hyper *exec.HyperJoinOp) func(exec.OpStats) {
	idx := len(c.Report.Joins)
	c.Report.Joins = append(c.Report.Joins, jr)
	rep := c.Report
	return func(st exec.OpStats) {
		rep.Joins[idx].OutputRows = int(st.Rows)
		if hyper != nil {
			hs := hyper.Stats()
			rep.Joins[idx].CHyJ = hs.CHyJ
			rep.Joins[idx].ProbeBlocks = hs.ProbeBlocks
		}
	}
}

// compileSemiShuffle lowers an intermediate ⋈ base-table join (§4.3):
// when the table has a tree on the join attribute only the intermediate
// shuffles and the table is read in place; otherwise the base table is
// charged the full shuffle rate too. tblFirst reports that the base
// table is the plan's left child (controls output column order).
func (r *Runner) compileSemiShuffle(c *Compiled, build exec.Operator, buildRows, buildCol int, sc *Scan, tblCol int, tblFirst bool) exec.Operator {
	strategy := StratSemiShuffle
	opts := exec.JoinOptions{
		BuildCharge:  exec.ChargeIntermediate,
		BuildIsRight: tblFirst,
		BuildRowsEst: r.estBuildRows(buildRows),
	}
	if r.ForceShuffle || sc.Table.TreeFor(tblCol) < 0 {
		// No tree on the join attribute: the base table shuffles too.
		opts.ProbeCharge = exec.ChargeShuffle
		strategy = StratShuffle
	}
	fill := r.reportJoin(c, JoinReport{Strategy: strategy}, nil)
	probe := r.instrument(c, "scan("+sc.Table.Name+")", r.Ex.TableScanOp(sc.Table, sc.Preds), nil)
	op := r.Ex.JoinOp(build, buildCol, probe, tblCol, opts)
	return r.instrument(c, "join["+strategy+"]("+sc.Table.Name+")", op, fill)
}

// compileTableJoin lowers a base-table ⋈ base-table join to the
// strategy planTableJoin picks from zone-map metadata.
func (r *Runner) compileTableJoin(j *Join, l, rt *Scan, c *Compiled) (exec.Operator, error) {
	p := r.cachedTableJoin(l, j.LCol, rt, j.RCol)
	pair := l.Table.Name + "⋈" + rt.Table.Name
	switch p.strategy {
	case StratShuffle:
		fill := r.reportJoin(c, JoinReport{Strategy: StratShuffle}, nil)
		op := r.shuffleTablesOp(c, l, j.LCol, rt, j.RCol)
		return r.instrument(c, "join[shuffle]("+pair+")", op, fill), nil

	case StratHyper:
		hy, op := r.hyperOp(p, l, j.LCol, rt, j.RCol)
		fill := r.reportJoin(c, JoinReport{Strategy: StratHyper}, hy)
		return r.instrument(c, "join[hyper]("+pair+")", op, fill), nil

	case StratCombination:
		// A⋈B = hyper(A1⋈B1) ∪ shuffle(A2⋈B) ∪ shuffle(A1⋈B2) — disjoint
		// and complete; the parts stream one after another through Concat.
		hy, hyOp := r.hyperOp(p, l, j.LCol, rt, j.RCol)
		parts := []exec.Operator{r.instrument(c, "join[hyper-part]("+pair+")", hyOp, nil)}
		if len(p.l2) > 0 {
			// shuffle(A2 ⋈ B): A2's residual rows against all of B again.
			lOp := r.instrument(c, "scan("+l.Table.Name+":residual)", r.Ex.ScanOp(p.l2, l.Preds), nil)
			rOp := r.instrument(c, "scan("+rt.Table.Name+")", r.Ex.TableScanOp(rt.Table, rt.Preds), nil)
			parts = append(parts, r.shuffleRowsOp(lOp, j.LCol, refRows(p.l2), rOp, j.RCol, refRows(p.r1)+refRows(p.r2)))
		}
		if len(p.r2) > 0 {
			// shuffle(A1 ⋈ B2): re-read A1 against B2's residual rows.
			lOp := r.instrument(c, "scan("+l.Table.Name+":copart)", r.Ex.ScanOp(p.l1, l.Preds), nil)
			rOp := r.instrument(c, "scan("+rt.Table.Name+":residual)", r.Ex.ScanOp(p.r2, rt.Preds), nil)
			parts = append(parts, r.shuffleRowsOp(lOp, j.LCol, refRows(p.l1), rOp, j.RCol, refRows(p.r2)))
		}
		fill := r.reportJoin(c, JoinReport{Strategy: StratCombination}, hy)
		return r.instrument(c, "join[combination]("+pair+")", exec.Concat(parts...), fill), nil
	}
	return nil, fmt.Errorf("planner: unknown strategy %q", p.strategy)
}

// hyperOp builds the streaming hyper-join for a decided plan, building
// on the left refs or (when the decision flipped the build side onto
// the smaller co-partitioned portion) on the right refs with a SwapSides
// wrapper restoring the plan's (left, right) column order.
func (r *Runner) hyperOp(p tableJoinPlan, l *Scan, lCol int, rt *Scan, rCol int) (*exec.HyperJoinOp, exec.Operator) {
	if !p.flip {
		h := r.Ex.NewHyperJoinOp(p.l1, l.Preds, lCol, p.r1, rt.Preds, rCol, r.budget())
		return h, h
	}
	h := r.Ex.NewHyperJoinOp(p.r1, rt.Preds, rCol, p.l1, l.Preds, lCol, r.budget())
	return h, exec.SwapSides(h, l.Table.Schema.NumCols())
}

// shuffleTablesOp is the operator form of a plain table shuffle join:
// both sides scan with pushdown, the smaller (by zone-map row counts)
// builds, and every row is charged the CSJ shuffle factor.
func (r *Runner) shuffleTablesOp(c *Compiled, l *Scan, lCol int, rt *Scan, rCol int) exec.Operator {
	lOp := r.instrument(c, "scan("+l.Table.Name+")", r.Ex.TableScanOp(l.Table, l.Preds), nil)
	rOp := r.instrument(c, "scan("+rt.Table.Name+")", r.Ex.TableScanOp(rt.Table, rt.Preds), nil)
	return r.shuffleRowsOp(lOp, lCol, refRows(r.scanRefs(l)), rOp, rCol, refRows(r.scanRefs(rt)))
}

// shuffleRowsOp joins two streams with full shuffle charges on both
// sides, building on whichever side the cardinality estimates say is
// smaller while preserving (left, right) output order.
func (r *Runner) shuffleRowsOp(lOp exec.Operator, lCol, lRows int, rOp exec.Operator, rCol, rRows int) exec.Operator {
	opts := exec.JoinOptions{BuildCharge: exec.ChargeShuffle, ProbeCharge: exec.ChargeShuffle}
	build, probe := lOp, rOp
	bCol, pCol := lCol, rCol
	bRows := lRows
	if rRows < lRows {
		build, probe = rOp, lOp
		bCol, pCol = rCol, lCol
		opts.BuildIsRight = true
		bRows = rRows
	}
	opts.BuildRowsEst = r.estBuildRows(bRows)
	return r.Ex.JoinOp(build, bCol, probe, pCol, opts)
}

// scanRefs resolves the blocks a scan node would read under the
// executor's pruning mode — the cardinality basis for build-side
// selection (the same set TableScanOp scans).
func (r *Runner) scanRefs(s *Scan) []core.BlockRef {
	return r.Ex.TableRefs(s.Table, s.Preds)
}

// estimateRows guesses a sub-plan's output cardinality from zone-map
// metadata alone: a scan contributes its pruned block row counts, and
// a join's output is approximated by its larger input — the fact-side
// magnitude of a key/foreign-key join, the common case in the
// evaluated plans. It only steers build-side selection, never
// correctness.
func (r *Runner) estimateRows(n Node) int {
	switch nd := n.(type) {
	case *Scan:
		return refRows(r.scanRefs(nd))
	case *Join:
		l, rt := r.estimateRows(nd.Left), r.estimateRows(nd.Right)
		if l > rt {
			return l
		}
		return rt
	default:
		return 0
	}
}

// EstimateFootprint prices a plan's peak operator memory from zone-map
// metadata alone: every hash join holds its smaller input resident
// (the build table), so the footprint sums min(left, right) estimated
// rows × estRowBytes over the plan's joins. Admission control reserves
// this many bytes from the shared budget before the query runs; like
// every planner estimate it steers resource decisions, never
// correctness — an underestimate makes the join spill inside its
// share, an overestimate queues a query that would have fit.
func (r *Runner) EstimateFootprint(n Node) int64 {
	nd, ok := n.(*Join)
	if !ok {
		return 0
	}
	l, rt := r.estimateRows(nd.Left), r.estimateRows(nd.Right)
	build := l
	if rt < l {
		build = rt
	}
	return int64(build)*estRowBytes + r.EstimateFootprint(nd.Left) + r.EstimateFootprint(nd.Right)
}
