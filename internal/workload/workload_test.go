package workload

import (
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

func q(join int, cols ...int) Query {
	var preds []predicate.Predicate
	for _, c := range cols {
		preds = append(preds, predicate.NewCmp(c, predicate.GT, value.NewInt(0)))
	}
	return Query{JoinAttr: join, Preds: preds}
}

func TestWindowFIFOEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(q(i))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	qs := w.Queries()
	if qs[0].JoinAttr != 2 || qs[2].JoinAttr != 4 {
		t.Errorf("eviction order wrong: %+v", qs)
	}
	if w.Cap() != 3 {
		t.Errorf("Cap = %d", w.Cap())
	}
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0)
	w.Add(q(1))
	w.Add(q(2))
	if w.Len() != 1 {
		t.Errorf("capacity should clamp to 1, len = %d", w.Len())
	}
}

func TestCountJoinAttr(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(1))
	w.Add(q(1))
	w.Add(q(2))
	w.Add(q(-1))
	if w.CountJoinAttr(1) != 2 || w.CountJoinAttr(2) != 1 || w.CountJoinAttr(7) != 0 {
		t.Errorf("counts wrong: %d %d %d", w.CountJoinAttr(1), w.CountJoinAttr(2), w.CountJoinAttr(7))
	}
}

func TestJoinAttrs(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(1))
	w.Add(q(1))
	w.Add(q(3))
	w.Add(q(-1)) // no join: excluded
	m := w.JoinAttrs()
	if len(m) != 2 || m[1] != 2 || m[3] != 1 {
		t.Errorf("JoinAttrs = %v", m)
	}
}

func TestPredColumns(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(-1, 2, 2, 5)) // column 2 deduped within one query
	w.Add(q(-1, 2))
	m := w.PredColumns()
	if m[2] != 2 || m[5] != 1 {
		t.Errorf("PredColumns = %v", m)
	}
}
