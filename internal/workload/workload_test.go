package workload

import (
	"testing"

	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

func q(join int, cols ...int) Query {
	var preds []predicate.Predicate
	for _, c := range cols {
		preds = append(preds, predicate.NewCmp(c, predicate.GT, value.NewInt(0)))
	}
	return Query{JoinAttr: join, Preds: preds}
}

func TestWindowFIFOEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(q(i))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	qs := w.Queries()
	if qs[0].JoinAttr != 2 || qs[2].JoinAttr != 4 {
		t.Errorf("eviction order wrong: %+v", qs)
	}
	if w.Cap() != 3 {
		t.Errorf("Cap = %d", w.Cap())
	}
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0)
	w.Add(q(1))
	w.Add(q(2))
	if w.Len() != 1 {
		t.Errorf("capacity should clamp to 1, len = %d", w.Len())
	}
}

func TestWindowExactlyFullBoundary(t *testing.T) {
	// The eviction edge: a window at exactly Len == Cap must hold every
	// query (no premature eviction), and the very next Add must evict
	// exactly one — the oldest.
	w := NewWindow(4)
	for i := 0; i < 4; i++ {
		w.Add(q(i))
	}
	if w.Len() != 4 {
		t.Fatalf("exactly-full window Len = %d, want 4", w.Len())
	}
	if qs := w.Queries(); qs[0].JoinAttr != 0 || qs[3].JoinAttr != 3 {
		t.Fatalf("exactly-full window lost a query: %+v", qs)
	}
	w.Add(q(4))
	if w.Len() != 4 {
		t.Fatalf("over-full window Len = %d, want 4", w.Len())
	}
	qs := w.Queries()
	if qs[0].JoinAttr != 1 {
		t.Errorf("oldest query not evicted: head = %d", qs[0].JoinAttr)
	}
	if qs[3].JoinAttr != 4 {
		t.Errorf("newest query missing: tail = %d", qs[3].JoinAttr)
	}
	// n/|W| accounting straddling the boundary: exactly one of the five
	// adds was evicted, so counts must cover attrs 1..4 only.
	if w.CountJoinAttr(0) != 0 || w.CountJoinAttr(4) != 1 {
		t.Errorf("counts after boundary eviction: attr0=%d attr4=%d",
			w.CountJoinAttr(0), w.CountJoinAttr(4))
	}
}

func TestWindowDuplicateSignatures(t *testing.T) {
	// Identical queries (same join attribute, same predicate columns)
	// each occupy a window slot and each count toward n — the Fig. 11
	// fraction rises with repetition, which is the whole adaptation
	// signal. Dedup here would freeze the optimizer.
	w := NewWindow(3)
	for i := 0; i < 3; i++ {
		w.Add(q(7, 2))
	}
	if w.Len() != 3 {
		t.Fatalf("duplicates deduped: Len = %d, want 3", w.Len())
	}
	if n := w.CountJoinAttr(7); n != 3 {
		t.Errorf("CountJoinAttr(7) = %d, want 3 (duplicates each count)", n)
	}
	if m := w.JoinAttrs(); m[7] != 3 {
		t.Errorf("JoinAttrs[7] = %d, want 3", m[7])
	}
	if m := w.PredColumns(); m[2] != 3 {
		t.Errorf("PredColumns[2] = %d, want 3 (deduped within, counted across)", m[2])
	}
	// One more duplicate at capacity: evicts a duplicate, counts hold.
	w.Add(q(7, 2))
	if w.Len() != 3 || w.CountJoinAttr(7) != 3 {
		t.Errorf("duplicate eviction broke counts: len=%d n=%d", w.Len(), w.CountJoinAttr(7))
	}
}

func TestWindowZeroAndNegativeCapacity(t *testing.T) {
	// Zero-length (and negative) windows clamp to capacity 1: the
	// optimizer always sees at least the current query, never a window
	// that silently drops everything.
	for _, capacity := range []int{0, -5} {
		w := NewWindow(capacity)
		if w.Cap() != 1 {
			t.Errorf("NewWindow(%d).Cap() = %d, want 1", capacity, w.Cap())
		}
		if w.Len() != 0 {
			t.Errorf("fresh window Len = %d, want 0", w.Len())
		}
		w.Add(q(1))
		w.Add(q(2))
		w.Add(q(3))
		if w.Len() != 1 {
			t.Errorf("clamped window Len = %d, want 1", w.Len())
		}
		if qs := w.Queries(); qs[0].JoinAttr != 3 {
			t.Errorf("clamped window should keep only the newest, got attr %d", qs[0].JoinAttr)
		}
		if w.CountJoinAttr(1) != 0 || w.CountJoinAttr(3) != 1 {
			t.Errorf("clamped window counts wrong")
		}
	}
}

func TestCountJoinAttr(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(1))
	w.Add(q(1))
	w.Add(q(2))
	w.Add(q(-1))
	if w.CountJoinAttr(1) != 2 || w.CountJoinAttr(2) != 1 || w.CountJoinAttr(7) != 0 {
		t.Errorf("counts wrong: %d %d %d", w.CountJoinAttr(1), w.CountJoinAttr(2), w.CountJoinAttr(7))
	}
}

func TestJoinAttrs(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(1))
	w.Add(q(1))
	w.Add(q(3))
	w.Add(q(-1)) // no join: excluded
	m := w.JoinAttrs()
	if len(m) != 2 || m[1] != 2 || m[3] != 1 {
		t.Errorf("JoinAttrs = %v", m)
	}
}

func TestPredColumns(t *testing.T) {
	w := NewWindow(10)
	w.Add(q(-1, 2, 2, 5)) // column 2 deduped within one query
	w.Add(q(-1, 2))
	m := w.PredColumns()
	if m[2] != 2 || m[5] != 1 {
		t.Errorf("PredColumns = %v", m)
	}
}
