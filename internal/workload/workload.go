// Package workload defines per-table query descriptors and the sliding
// query window AdaptDB keeps for repartitioning decisions ("AdaptDB
// keeps all queries in a recent query window", §5.2; Amoeba "maintains a
// query window denoted by W", §3.2).
//
// Windows are fed by the session lifecycle: every query a
// session.Session executes is recorded (via optimizer.OnQuery) into the
// window of each table it touches before the plan runs, so the n/|W|
// fractions that drive smooth repartitioning and the predicate-column
// counts that drive Amoeba adaptation always reflect the live stream,
// query by query.
package workload

import (
	"adaptdb/internal/predicate"
)

// Query describes how one query touches one table: the selection
// predicates it pushes down and the join attribute it uses on this table
// (-1 when the table is not joined).
type Query struct {
	Preds    []predicate.Predicate
	JoinAttr int
}

// Window is a bounded FIFO of the most recent queries against one table.
type Window struct {
	cap int
	qs  []Query
}

// NewWindow creates a window of the given capacity (the paper defaults
// to 10; Fig. 15 sweeps 5 and 35).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{cap: capacity}
}

// Cap returns |W|.
func (w *Window) Cap() int { return w.cap }

// Len returns the number of queries currently held.
func (w *Window) Len() int { return len(w.qs) }

// Add appends a query, evicting the oldest when full.
func (w *Window) Add(q Query) {
	w.qs = append(w.qs, q)
	if len(w.qs) > w.cap {
		w.qs = w.qs[1:]
	}
}

// Queries returns the window contents, oldest first (shared slice; do
// not mutate).
func (w *Window) Queries() []Query { return w.qs }

// CountJoinAttr returns n = |{q ∈ W ∧ q's join attribute = t}| from the
// Fig. 11 algorithm.
func (w *Window) CountJoinAttr(attr int) int {
	n := 0
	for _, q := range w.qs {
		if q.JoinAttr == attr {
			n++
		}
	}
	return n
}

// JoinAttrs returns the distinct join attributes present, with counts.
func (w *Window) JoinAttrs() map[int]int {
	out := make(map[int]int)
	for _, q := range w.qs {
		if q.JoinAttr >= 0 {
			out[q.JoinAttr]++
		}
	}
	return out
}

// PredColumns returns the distinct predicate columns observed, with
// counts — the hints Amoeba's repartitioner uses (§3.2).
func (w *Window) PredColumns() map[int]int {
	out := make(map[int]int)
	for _, q := range w.qs {
		seen := make(map[int]bool)
		for _, p := range q.Preds {
			if !seen[p.Col] {
				seen[p.Col] = true
				out[p.Col]++
			}
		}
	}
	return out
}
