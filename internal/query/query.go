// Package query is the declarative logical-query layer: a Spec names
// tables, columns, an n-way join graph (multi-attribute and cyclic
// edges allowed), pushdown predicates, and group-by/aggregate clauses,
// all by name. Binding a Spec against a Catalog resolves every name to
// the physical schema up front — a misspelled column is a typed
// ErrUnknownColumn at bind time, never a silently wrong positional
// join — and yields a Bound form the planner lowers to its internal
// Node IR via greedy zone-map-driven join ordering (planner.CompileSpec).
//
// Spec is the public query surface: session.FromSpec, serve, the
// benches and the differential harness all consume it; hand-built
// planner.Node trees remain as the compiler's internal representation.
package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"adaptdb/internal/core"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// Typed binding errors, matchable with errors.Is through the wrapped
// context (which table, which column).
var (
	// ErrUnknownTable reports a table or alias no Catalog entry or
	// TableRef declares.
	ErrUnknownTable = errors.New("query: unknown table")
	// ErrUnknownColumn reports a column name absent from its table's
	// schema.
	ErrUnknownColumn = errors.New("query: unknown column")
)

// Catalog resolves table names to loaded tables at bind time.
type Catalog map[string]*core.Table

// Pred is a named-column pushdown predicate on one table.
type Pred struct {
	Col string
	Op  predicate.Op
	// Val is the comparison operand; Vals the IN list.
	Val  value.Value
	Vals []value.Value
}

// Cmp builds a comparison predicate on a named column.
func Cmp(col string, op predicate.Op, v value.Value) Pred {
	return Pred{Col: col, Op: op, Val: v}
}

// In builds a membership predicate on a named column.
func In(col string, vs ...value.Value) Pred {
	return Pred{Col: col, Op: predicate.In, Vals: vs}
}

// TableRef names one table of the query, with optional alias (for
// self-joins) and pushdown predicates.
type TableRef struct {
	Name string
	// As is the alias column references use; empty means Name.
	As    string
	Preds []Pred
}

// T builds a table reference.
func T(name string, preds ...Pred) TableRef {
	return TableRef{Name: name, Preds: preds}
}

// Aliased returns the reference under an alias.
func (t TableRef) Aliased(as string) TableRef {
	t.As = as
	return t
}

func (t TableRef) alias() string {
	if t.As != "" {
		return t.As
	}
	return t.Name
}

// Col names one column of one table (by alias).
type Col struct {
	Table, Column string
}

// C builds a column reference.
func C(table, column string) Col { return Col{Table: table, Column: column} }

// JoinEdge is one edge of the join graph: an equi-join between two
// tables on one or more attribute pairs (Left[i] = Right[i]). Edges may
// form cycles; every attribute pair beyond what the ordered join tree
// consumes becomes a residual equality filter.
type JoinEdge struct {
	Left, Right []Col
}

// On builds a single-attribute join edge.
func On(l, r Col) JoinEdge {
	return JoinEdge{Left: []Col{l}, Right: []Col{r}}
}

// And extends an edge with another attribute pair (multi-attribute
// join). It returns a new edge; the receiver is not mutated.
func (e JoinEdge) And(l, r Col) JoinEdge {
	return JoinEdge{
		Left:  append(append([]Col(nil), e.Left...), l),
		Right: append(append([]Col(nil), e.Right...), r),
	}
}

// AggFunc identifies an aggregate function.
type AggFunc uint8

// The supported aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "agg?" + strconv.Itoa(int(f))
}

// Agg is one aggregate clause. Col is ignored for AggCount (COUNT(*)).
type Agg struct {
	Func AggFunc
	Col  Col
}

// Count builds COUNT(*).
func Count() Agg { return Agg{Func: AggCount} }

// Sum builds SUM(c).
func Sum(c Col) Agg { return Agg{Func: AggSum, Col: c} }

// Min builds MIN(c).
func Min(c Col) Agg { return Agg{Func: AggMin, Col: c} }

// Max builds MAX(c).
func Max(c Col) Agg { return Agg{Func: AggMax, Col: c} }

// Avg builds AVG(c).
func Avg(c Col) Agg { return Agg{Func: AggAvg, Col: c} }

// Spec is one declarative query: tables with pushdown predicates, a
// join graph, and optional grouping/aggregation. Without Aggs and
// GroupBy the result is the joined rows with columns in table
// declaration order; with GroupBy and/or Aggs each result row is the
// group-by columns followed by the aggregate values (one row total for
// a global aggregate, even over an empty input).
type Spec struct {
	// Label tags results; informational.
	Label   string
	Tables  []TableRef
	Joins   []JoinEdge
	GroupBy []Col
	Aggs    []Agg
}

// BoundTable is one table resolved against the catalog.
type BoundTable struct {
	Ref   TableRef
	Table *core.Table
	Preds []predicate.Predicate
}

// BoundEdge is one join edge with endpoints as table indexes and
// attributes as column indexes (parallel lists, LCols[i] = RCols[i]).
type BoundEdge struct {
	L, R         int
	LCols, RCols []int
}

// BoundCol is a resolved column reference.
type BoundCol struct {
	Table, Col int
}

// BoundAgg is a resolved aggregate; Table is -1 for COUNT(*).
type BoundAgg struct {
	Func       AggFunc
	Table, Col int
}

// Bound is a Spec with every name resolved — what the planner lowers.
type Bound struct {
	Spec    Spec
	Tables  []BoundTable
	Joins   []BoundEdge
	GroupBy []BoundCol
	Aggs    []BoundAgg
}

// Grouped reports whether the query aggregates (any group-by column or
// aggregate clause).
func (b *Bound) Grouped() bool {
	return len(b.GroupBy) > 0 || len(b.Aggs) > 0
}

// Bind resolves the spec against a catalog: every table name, column
// name and alias is checked, join-graph connectivity is enforced, and
// predicates become positional predicate.Predicate values. The returned
// Bound is immutable by convention and safe to share across compiles.
func (s Spec) Bind(cat Catalog) (*Bound, error) {
	if len(s.Tables) == 0 {
		return nil, fmt.Errorf("query: spec %q has no tables", s.Label)
	}
	b := &Bound{Spec: s}
	byAlias := make(map[string]int, len(s.Tables))
	for i, tr := range s.Tables {
		tbl, ok := cat[tr.Name]
		if !ok || tbl == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownTable, tr.Name)
		}
		alias := tr.alias()
		if _, dup := byAlias[alias]; dup {
			return nil, fmt.Errorf("query: duplicate table alias %q", alias)
		}
		byAlias[alias] = i
		bt := BoundTable{Ref: tr, Table: tbl}
		for _, p := range tr.Preds {
			idx := tbl.Schema.Index(p.Col)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, alias, p.Col)
			}
			bt.Preds = append(bt.Preds, predicate.Predicate{
				Col: idx, Op: p.Op, Val: p.Val, Vals: p.Vals,
			})
		}
		b.Tables = append(b.Tables, bt)
	}

	resolve := func(c Col) (BoundCol, error) {
		ti, ok := byAlias[c.Table]
		if !ok {
			return BoundCol{}, fmt.Errorf("%w: %q (in column %s.%s)", ErrUnknownTable, c.Table, c.Table, c.Column)
		}
		idx := b.Tables[ti].Table.Schema.Index(c.Column)
		if idx < 0 {
			return BoundCol{}, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, c.Table, c.Column)
		}
		return BoundCol{Table: ti, Col: idx}, nil
	}

	for ei, e := range s.Joins {
		if len(e.Left) == 0 || len(e.Left) != len(e.Right) {
			return nil, fmt.Errorf("query: join edge %d has mismatched attribute lists (%d vs %d)",
				ei, len(e.Left), len(e.Right))
		}
		be := BoundEdge{L: -1, R: -1}
		for ai := range e.Left {
			l, err := resolve(e.Left[ai])
			if err != nil {
				return nil, err
			}
			r, err := resolve(e.Right[ai])
			if err != nil {
				return nil, err
			}
			if ai == 0 {
				be.L, be.R = l.Table, r.Table
			} else if l.Table != be.L || r.Table != be.R {
				return nil, fmt.Errorf("query: join edge %d mixes tables across attribute pairs", ei)
			}
			be.LCols = append(be.LCols, l.Col)
			be.RCols = append(be.RCols, r.Col)
		}
		if be.L == be.R {
			return nil, fmt.Errorf("query: join edge %d joins table %q to itself (alias one side)",
				ei, s.Tables[be.L].alias())
		}
		b.Joins = append(b.Joins, be)
	}

	// Connectivity: a disconnected graph would need a cross product,
	// which the operator machinery deliberately does not provide.
	if err := b.checkConnected(); err != nil {
		return nil, err
	}

	for _, c := range s.GroupBy {
		bc, err := resolve(c)
		if err != nil {
			return nil, err
		}
		b.GroupBy = append(b.GroupBy, bc)
	}
	for _, a := range s.Aggs {
		ba := BoundAgg{Func: a.Func, Table: -1, Col: -1}
		if a.Func != AggCount {
			bc, err := resolve(a.Col)
			if err != nil {
				return nil, err
			}
			ba.Table, ba.Col = bc.Table, bc.Col
		}
		b.Aggs = append(b.Aggs, ba)
	}
	return b, nil
}

// checkConnected verifies every table is reachable through join edges.
func (b *Bound) checkConnected() error {
	if len(b.Tables) <= 1 {
		return nil
	}
	adj := make([][]int, len(b.Tables))
	for _, e := range b.Joins {
		adj[e.L] = append(adj[e.L], e.R)
		adj[e.R] = append(adj[e.R], e.L)
	}
	seen := make([]bool, len(b.Tables))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[t] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("query: table %q is not connected to the join graph (missing edge)",
				b.Spec.Tables[i].alias())
		}
	}
	return nil
}

// Uses derives the optimizer's per-table touch descriptors from the
// join graph: each table's join attribute is the first attribute of the
// first edge referencing it (edge declaration order), or -1 when no
// edge touches it. This replaces hand-maintained TableUse lists — the
// descriptors can no longer drift from what the query actually joins.
func (b *Bound) Uses() []optimizer.TableUse {
	out := make([]optimizer.TableUse, len(b.Tables))
	for i, t := range b.Tables {
		out[i] = optimizer.TableUse{Table: t.Table, JoinAttr: -1, Preds: t.Preds}
	}
	for _, e := range b.Joins {
		if out[e.L].JoinAttr < 0 {
			out[e.L].JoinAttr = e.LCols[0]
		}
		if out[e.R].JoinAttr < 0 {
			out[e.R].JoinAttr = e.RCols[0]
		}
	}
	return out
}

// Fingerprint renders the bound spec's full logical shape — tables,
// aliases, predicates, every join-graph edge with every attribute pair,
// group-by columns and aggregate clauses — as a canonical string. It is
// the spec side of the plan-cache key contract: two specs differing in
// any of those fields fingerprint differently, so they can never share
// a cached ordering (epochs and runner knobs are the planner's half of
// the key).
func (b *Bound) Fingerprint() string {
	var sb strings.Builder
	sb.Grow(128)
	for i, t := range b.Tables {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.Table.Name)
		if a := t.Ref.alias(); a != t.Table.Name {
			sb.WriteByte('=')
			sb.WriteString(a)
		}
		for _, p := range t.Preds {
			sb.WriteByte(';')
			sb.WriteString(p.String())
		}
	}
	sb.WriteString("|J")
	for i, e := range b.Joins {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(e.L))
		for _, c := range e.LCols {
			sb.WriteByte('.')
			sb.WriteString(strconv.Itoa(c))
		}
		sb.WriteByte('~')
		sb.WriteString(strconv.Itoa(e.R))
		for _, c := range e.RCols {
			sb.WriteByte('.')
			sb.WriteString(strconv.Itoa(c))
		}
	}
	sb.WriteString("|G")
	for i, c := range b.GroupBy {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c.Table))
		sb.WriteByte('.')
		sb.WriteString(strconv.Itoa(c.Col))
	}
	sb.WriteString("|A")
	for i, a := range b.Aggs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.Func.String())
		if a.Table >= 0 {
			sb.WriteByte('(')
			sb.WriteString(strconv.Itoa(a.Table))
			sb.WriteByte('.')
			sb.WriteString(strconv.Itoa(a.Col))
			sb.WriteByte(')')
		}
	}
	return sb.String()
}
