package query

import (
	"errors"
	"strings"
	"testing"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// testCatalog loads three small tables whose shapes exercise binding:
// users(id, age), orders(uid, total), items(oid, sku).
func testCatalog(t *testing.T) Catalog {
	t.Helper()
	store := dfs.NewStore(2, 1, 1)
	load := func(name string, sch *schema.Schema, rows []tuple.Tuple) *core.Table {
		tbl, err := core.Load(store, name, sch, rows, core.LoadOptions{RowsPerBlock: 8, JoinAttr: -1, Seed: 1})
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		return tbl
	}
	users := schema.MustNew(
		schema.Column{Name: "id", Kind: value.Int},
		schema.Column{Name: "age", Kind: value.Int},
	)
	orders := schema.MustNew(
		schema.Column{Name: "uid", Kind: value.Int},
		schema.Column{Name: "total", Kind: value.Float},
	)
	items := schema.MustNew(
		schema.Column{Name: "oid", Kind: value.Int},
		schema.Column{Name: "sku", Kind: value.String},
	)
	var urows, orows, irows []tuple.Tuple
	for i := int64(0); i < 16; i++ {
		urows = append(urows, tuple.Tuple{value.NewInt(i), value.NewInt(20 + i)})
		orows = append(orows, tuple.Tuple{value.NewInt(i % 8), value.NewFloat(float64(i))})
		irows = append(irows, tuple.Tuple{value.NewInt(i % 4), value.NewString("sku")})
	}
	return Catalog{
		"users":  load("users", users, urows),
		"orders": load("orders", orders, orows),
		"items":  load("items", items, irows),
	}
}

func TestBindResolvesNames(t *testing.T) {
	cat := testCatalog(t)
	s := Spec{
		Label: "t",
		Tables: []TableRef{
			T("users", Cmp("age", predicate.GT, value.NewInt(30))),
			T("orders"),
			T("items"),
		},
		Joins: []JoinEdge{
			On(C("users", "id"), C("orders", "uid")),
			On(C("orders", "uid"), C("items", "oid")),
		},
		GroupBy: []Col{C("users", "age")},
		Aggs:    []Agg{Count(), Sum(C("orders", "total"))},
	}
	b, err := s.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Tables) != 3 || len(b.Joins) != 2 {
		t.Fatalf("bound %d tables, %d joins", len(b.Tables), len(b.Joins))
	}
	if b.Tables[0].Preds[0].Col != 1 {
		t.Errorf("age resolved to col %d, want 1", b.Tables[0].Preds[0].Col)
	}
	e := b.Joins[0]
	if e.L != 0 || e.R != 1 || e.LCols[0] != 0 || e.RCols[0] != 0 {
		t.Errorf("edge 0 bound to %+v", e)
	}
	if b.GroupBy[0] != (BoundCol{Table: 0, Col: 1}) {
		t.Errorf("group-by bound to %+v", b.GroupBy[0])
	}
	if b.Aggs[0].Table != -1 || b.Aggs[1].Table != 1 || b.Aggs[1].Col != 1 {
		t.Errorf("aggs bound to %+v", b.Aggs)
	}
	if !b.Grouped() {
		t.Error("Grouped() = false for a grouped spec")
	}
}

func TestBindTypedErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"unknown table", Spec{Tables: []TableRef{T("nope")}}, ErrUnknownTable},
		{"unknown pred column", Spec{Tables: []TableRef{
			T("users", Cmp("agee", predicate.GT, value.NewInt(1))),
		}}, ErrUnknownColumn},
		{"unknown join column", Spec{
			Tables: []TableRef{T("users"), T("orders")},
			Joins:  []JoinEdge{On(C("users", "id"), C("orders", "uidd"))},
		}, ErrUnknownColumn},
		{"unknown join alias", Spec{
			Tables: []TableRef{T("users"), T("orders")},
			Joins:  []JoinEdge{On(C("userz", "id"), C("orders", "uid"))},
		}, ErrUnknownTable},
		{"unknown agg column", Spec{
			Tables: []TableRef{T("users")},
			Aggs:   []Agg{Sum(C("users", "salary"))},
		}, ErrUnknownColumn},
	}
	for _, tc := range cases {
		_, err := tc.spec.Bind(cat)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestBindValidatesShape(t *testing.T) {
	cat := testCatalog(t)
	// Disconnected graph.
	_, err := Spec{
		Tables: []TableRef{T("users"), T("orders"), T("items")},
		Joins:  []JoinEdge{On(C("users", "id"), C("orders", "uid"))},
	}.Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("disconnected graph: err = %v", err)
	}
	// Self-join without alias.
	_, err = Spec{
		Tables: []TableRef{T("users"), T("orders")},
		Joins:  []JoinEdge{On(C("users", "id"), C("users", "age"))},
	}.Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("self edge: err = %v", err)
	}
	// Duplicate alias.
	_, err = Spec{Tables: []TableRef{T("users"), T("users")}}.Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate alias: err = %v", err)
	}
	// Aliased self-join binds fine.
	b, err := Spec{
		Tables: []TableRef{T("users"), T("users").Aliased("u2")},
		Joins:  []JoinEdge{On(C("users", "id"), C("u2", "age"))},
	}.Bind(cat)
	if err != nil {
		t.Fatalf("aliased self-join: %v", err)
	}
	if b.Joins[0].L != 0 || b.Joins[0].R != 1 {
		t.Errorf("aliased self-join bound to %+v", b.Joins[0])
	}
}

func TestUsesDerivation(t *testing.T) {
	cat := testCatalog(t)
	b, err := Spec{
		Tables: []TableRef{T("users", Cmp("age", predicate.LT, value.NewInt(40))), T("orders"), T("items")},
		Joins: []JoinEdge{
			On(C("users", "id"), C("orders", "uid")),
			On(C("orders", "uid"), C("items", "oid")),
		},
	}.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	uses := b.Uses()
	if len(uses) != 3 {
		t.Fatalf("%d uses, want 3", len(uses))
	}
	if uses[0].JoinAttr != 0 || uses[1].JoinAttr != 0 || uses[2].JoinAttr != 0 {
		t.Errorf("join attrs = %d,%d,%d", uses[0].JoinAttr, uses[1].JoinAttr, uses[2].JoinAttr)
	}
	if len(uses[0].Preds) != 1 {
		t.Errorf("users preds not carried: %v", uses[0].Preds)
	}
	// A table no edge touches reports -1.
	b2, err := Spec{Tables: []TableRef{T("users")}}.Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Uses()[0].JoinAttr; got != -1 {
		t.Errorf("scan-only join attr = %d, want -1", got)
	}
}

// TestFingerprintDiscriminates: every logical spec field must show up
// in the fingerprint — differing tables, aliases, predicates, edges,
// multi-attribute pairs, group-by columns or aggregates can never
// collide (the spec half of the plan-cache key contract).
func TestFingerprintDiscriminates(t *testing.T) {
	cat := testCatalog(t)
	base := Spec{
		Tables: []TableRef{T("users"), T("orders")},
		Joins:  []JoinEdge{On(C("users", "id"), C("orders", "uid"))},
	}
	fp := func(s Spec) string {
		t.Helper()
		b, err := s.Bind(cat)
		if err != nil {
			t.Fatal(err)
		}
		return b.Fingerprint()
	}
	seen := map[string]string{"base": fp(base)}
	check := func(label string, s Spec) {
		t.Helper()
		key := fp(s)
		for prev, k := range seen {
			if k == key {
				t.Errorf("%s fingerprint collides with %s: %q", label, prev, key)
			}
		}
		seen[label] = key
	}

	withPred := base
	withPred.Tables = []TableRef{T("users", Cmp("age", predicate.GT, value.NewInt(1))), T("orders")}
	check("pred", withPred)

	otherCol := base
	otherCol.Joins = []JoinEdge{On(C("users", "age"), C("orders", "uid"))}
	check("join-col", otherCol)

	multiAttr := base
	multiAttr.Joins = []JoinEdge{On(C("users", "id"), C("orders", "uid")).And(C("users", "age"), C("orders", "uid"))}
	check("multi-attr", multiAttr)

	extraEdge := Spec{
		Tables: []TableRef{T("users"), T("orders"), T("items")},
		Joins: []JoinEdge{
			On(C("users", "id"), C("orders", "uid")),
			On(C("orders", "uid"), C("items", "oid")),
		},
	}
	check("extra-table-edge", extraEdge)

	cyclic := extraEdge
	cyclic.Joins = append(append([]JoinEdge(nil), extraEdge.Joins...),
		On(C("users", "id"), C("items", "oid")))
	check("cyclic-edge", cyclic)

	grouped := base
	grouped.GroupBy = []Col{C("users", "age")}
	check("group-by", grouped)

	grouped2 := base
	grouped2.GroupBy = []Col{C("users", "id")}
	check("group-by-col", grouped2)

	agg1 := base
	agg1.Aggs = []Agg{Count()}
	check("agg-count", agg1)

	agg2 := base
	agg2.Aggs = []Agg{Sum(C("orders", "total"))}
	check("agg-sum", agg2)

	agg3 := base
	agg3.Aggs = []Agg{Min(C("orders", "total"))}
	check("agg-func", agg3)

	aliased := Spec{
		Tables: []TableRef{T("users"), T("users").Aliased("u2")},
		Joins:  []JoinEdge{On(C("users", "id"), C("u2", "age"))},
	}
	check("alias", aliased)
}
