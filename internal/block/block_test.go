package block

import (
	"math/rand"
	"testing"
	"testing/quick"
	"unsafe"

	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "k", Kind: value.Int},
	schema.Column{Name: "p", Kind: value.Float},
	schema.Column{Name: "s", Kind: value.String},
)

func row(k int64, p float64, s string) tuple.Tuple {
	return tuple.Tuple{value.NewInt(k), value.NewFloat(p), value.NewString(s)}
}

func TestZoneMapMaintenance(t *testing.T) {
	b := New(sch)
	if b.Len() != 0 {
		t.Fatalf("new block not empty")
	}
	b.Append(row(5, 2.5, "m"))
	b.Append(row(1, 9.5, "z"))
	b.Append(row(8, 0.5, "a"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Min(0).Int64() != 1 || b.Max(0).Int64() != 8 {
		t.Errorf("int zone map wrong: [%v, %v]", b.Min(0), b.Max(0))
	}
	if b.Min(1).Float64() != 0.5 || b.Max(1).Float64() != 9.5 {
		t.Errorf("float zone map wrong")
	}
	if b.Min(2).Str() != "a" || b.Max(2).Str() != "z" {
		t.Errorf("string zone map wrong")
	}
}

func TestZoneMapIgnoresNulls(t *testing.T) {
	b := New(sch)
	b.Append(tuple.Tuple{value.NewInt(5), {}, value.NewString("x")})
	b.Append(tuple.Tuple{value.NewInt(3), {}, value.NewString("y")})
	if !b.Min(1).IsNull() {
		t.Errorf("all-null column should have null min")
	}
	if !b.Range(1).Empty() {
		t.Errorf("all-null column range should be empty")
	}
	if b.Min(0).Int64() != 3 {
		t.Errorf("non-null column unaffected")
	}
}

func TestRange(t *testing.T) {
	b := New(sch)
	if !b.Range(0).Empty() {
		t.Errorf("empty block should have empty range")
	}
	b.Append(row(10, 1, "a"))
	b.Append(row(20, 1, "a"))
	r := b.Range(0)
	if !r.Contains(value.NewInt(10)) || !r.Contains(value.NewInt(20)) || !r.Contains(value.NewInt(15)) {
		t.Errorf("range should span [10,20]: %v", r)
	}
	if r.Contains(value.NewInt(9)) || r.Contains(value.NewInt(21)) {
		t.Errorf("range too wide: %v", r)
	}
	if !b.Range(99).Empty() {
		t.Errorf("out-of-range column should be empty range")
	}
}

func TestMaybeMatches(t *testing.T) {
	b := New(sch)
	b.Append(row(10, 5, "a"))
	b.Append(row(20, 6, "b"))
	match := predicate.ColumnRanges([]predicate.Predicate{
		predicate.NewCmp(0, GEQ(), value.NewInt(15)),
	})
	if !b.MaybeMatches(match) {
		t.Errorf("block overlapping predicate range should match")
	}
	miss := predicate.ColumnRanges([]predicate.Predicate{
		predicate.NewCmp(0, GEQ(), value.NewInt(100)),
	})
	if b.MaybeMatches(miss) {
		t.Errorf("block outside predicate range should not match")
	}
	if New(sch).MaybeMatches(nil) {
		t.Errorf("empty block should never match")
	}
}

func GEQ() predicate.Op { return predicate.GE }

// Property: MaybeMatches never prunes a block containing a matching
// tuple (soundness of zone maps).
func TestMaybeMatchesSoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(sch)
		var rows []tuple.Tuple
		for i := 0; i < 1+rng.Intn(20); i++ {
			tp := row(rng.Int63n(100), rng.Float64()*100, string(rune('a'+rng.Intn(26))))
			rows = append(rows, tp)
			b.Append(tp)
		}
		ops := []predicate.Op{predicate.EQ, predicate.LT, predicate.LE, predicate.GT, predicate.GE}
		preds := []predicate.Predicate{
			predicate.NewCmp(0, ops[rng.Intn(len(ops))], value.NewInt(rng.Int63n(100))),
			predicate.NewCmp(1, ops[rng.Intn(len(ops))], value.NewFloat(rng.Float64()*100)),
		}
		anyMatch := false
		for _, tp := range rows {
			if predicate.MatchesAll(preds, tp) {
				anyMatch = true
				break
			}
		}
		if anyMatch && !b.MaybeMatches(predicate.ColumnRanges(preds)) {
			return false // pruned a block with matches: unsound
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaOf(t *testing.T) {
	b := New(sch)
	b.Append(row(10, 5, "a"))
	b.Append(row(20, 6, "b"))
	m := MetaOf(7, b)
	if m.ID != 7 || m.Count != 2 {
		t.Errorf("meta header wrong: %+v", m)
	}
	if m.Range(0).String() != b.Range(0).String() {
		t.Errorf("meta range != block range")
	}
	miss := predicate.ColumnRanges([]predicate.Predicate{predicate.NewCmp(0, predicate.GT, value.NewInt(50))})
	if m.MaybeMatches(miss) {
		t.Errorf("meta should prune like the block")
	}
	empty := MetaOf(1, New(sch))
	if empty.MaybeMatches(nil) {
		t.Errorf("empty meta should never match")
	}
	if !empty.Range(0).Empty() {
		t.Errorf("empty meta range should be empty")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	b := New(sch)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		b.Append(row(rng.Int63n(1000), rng.Float64(), "str"))
	}
	buf := b.AppendBinary(nil)
	got, err := Decode(buf, sch)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Len() != b.Len() {
		t.Fatalf("Len: got %d want %d", got.Len(), b.Len())
	}
	for i := range b.Tuples {
		for c := range b.Tuples[i] {
			if value.Compare(got.Tuples[i][c], b.Tuples[i][c]) != 0 {
				t.Fatalf("tuple %d col %d mismatch", i, c)
			}
		}
	}
	// Zone maps rebuilt identically.
	for c := 0; c < sch.NumCols(); c++ {
		if value.Compare(got.Min(c), b.Min(c)) != 0 || value.Compare(got.Max(c), b.Max(c)) != 0 {
			t.Errorf("zone map col %d differs after decode", c)
		}
	}
}

// TestDecodeInternsStrings pins the scan decode path's intern wiring:
// the same short string decoded in many rows shares ONE backing
// allocation, instead of one per occurrence.
func TestDecodeInternsStrings(t *testing.T) {
	b := New(sch)
	for i := 0; i < 50; i++ {
		b.Append(row(int64(i), 0, "DELIVER IN PERSON"))
	}
	got, err := Decode(b.AppendBinary(nil), sch)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	first := got.Tuples[0][2].S
	for i := range got.Tuples {
		s := got.Tuples[i][2].S
		if s != "DELIVER IN PERSON" {
			t.Fatalf("row %d decoded %q", i, s)
		}
		if unsafe.StringData(s) != unsafe.StringData(first) {
			t.Fatalf("row %d's string has its own allocation — decode not interned", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0xFF}, sch); err == nil {
		t.Errorf("bad magic accepted")
	}
	b := New(sch)
	b.Append(row(1, 1, "x"))
	buf := b.AppendBinary(nil)
	if _, err := Decode(buf[:len(buf)-2], sch); err == nil {
		t.Errorf("truncated block accepted")
	}
}

func TestSerializeEmpty(t *testing.T) {
	buf := New(sch).AppendBinary(nil)
	got, err := Decode(buf, sch)
	if err != nil {
		t.Fatalf("Decode empty: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip has %d tuples", got.Len())
	}
}
