// Package block implements AdaptDB data blocks: the unit of storage,
// partitioning and I/O accounting. A block holds a batch of tuples plus a
// zone map (per-attribute min/max). Zone maps serve two roles from the
// paper: they are the Ranget(x) function hyper-join uses to compute
// overlap vectors (§4.1.1), and they let scans skip blocks whose ranges
// cannot satisfy a query's predicates.
package block

import (
	"encoding/binary"
	"fmt"

	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// ID identifies a block within one table. IDs are dense and assigned by
// the table's partitioning tree (leaf ids) or by the repartitioner.
type ID int32

// Block is an in-memory batch of rows with maintained zone maps. The zero
// Block is empty and usable.
type Block struct {
	Tuples []tuple.Tuple
	mins   []value.Value
	maxs   []value.Value
}

// New returns an empty block sized for the given schema.
func New(s *schema.Schema) *Block {
	return &Block{
		mins: make([]value.Value, s.NumCols()),
		maxs: make([]value.Value, s.NumCols()),
	}
}

// Len returns the number of tuples.
func (b *Block) Len() int { return len(b.Tuples) }

// Append adds a tuple and folds it into the zone map.
func (b *Block) Append(t tuple.Tuple) {
	if len(b.mins) < len(t) {
		grown := make([]value.Value, len(t))
		copy(grown, b.mins)
		b.mins = grown
		grown = make([]value.Value, len(t))
		copy(grown, b.maxs)
		b.maxs = grown
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if b.mins[i].IsNull() || value.Less(v, b.mins[i]) {
			b.mins[i] = v
		}
		if b.maxs[i].IsNull() || value.Less(b.maxs[i], v) {
			b.maxs[i] = v
		}
	}
	b.Tuples = append(b.Tuples, t)
}

// Range returns the zone-map interval of column col: the paper's
// Ranget(x). Empty blocks or all-null columns return an empty range so
// that an empty block never overlaps anything.
func (b *Block) Range(col int) predicate.Range {
	if b.Len() == 0 || col >= len(b.mins) || b.mins[col].IsNull() {
		return predicate.Range{HasLo: true, HasHi: true,
			Lo: value.NewInt(1), Hi: value.NewInt(0)} // provably empty
	}
	return predicate.Closed(b.mins[col], b.maxs[col])
}

// Min returns the zone-map minimum for col (Null if no data).
func (b *Block) Min(col int) value.Value {
	if col >= len(b.mins) {
		return value.Value{}
	}
	return b.mins[col]
}

// Max returns the zone-map maximum for col (Null if no data).
func (b *Block) Max(col int) value.Value {
	if col >= len(b.maxs) {
		return value.Value{}
	}
	return b.maxs[col]
}

// MaybeMatches reports whether the block could contain tuples satisfying
// the per-column ranges (from predicate.ColumnRanges). It must never
// return false for a block that contains a matching tuple.
func (b *Block) MaybeMatches(ranges map[int]predicate.Range) bool {
	if b.Len() == 0 {
		return false
	}
	for col, r := range ranges {
		if !b.Range(col).Overlaps(r) {
			return false
		}
	}
	return true
}

// Meta is the detached block metadata AdaptDB keeps in the partitioning
// tree / catalog: tuple count and zone map, without the data itself.
// The paper stores "the Ranget values for each block ... with each block
// in the partitioning tree"; Meta is that record.
type Meta struct {
	ID    ID
	Count int
	Mins  []value.Value
	Maxs  []value.Value
}

// MetaOf extracts the metadata of a block.
func MetaOf(id ID, b *Block) Meta {
	return Meta{
		ID:    id,
		Count: b.Len(),
		Mins:  append([]value.Value(nil), b.mins...),
		Maxs:  append([]value.Value(nil), b.maxs...),
	}
}

// Range returns the zone-map interval for col from detached metadata.
func (m Meta) Range(col int) predicate.Range {
	if m.Count == 0 || col >= len(m.Mins) || m.Mins[col].IsNull() {
		return predicate.Range{HasLo: true, HasHi: true,
			Lo: value.NewInt(1), Hi: value.NewInt(0)}
	}
	return predicate.Closed(m.Mins[col], m.Maxs[col])
}

// MaybeMatches is Block.MaybeMatches over detached metadata.
func (m Meta) MaybeMatches(ranges map[int]predicate.Range) bool {
	if m.Count == 0 {
		return false
	}
	for col, r := range ranges {
		if !m.Range(col).Overlaps(r) {
			return false
		}
	}
	return true
}

const serialMagic = uint32(0xADB10C)

// AppendBinary serializes the block (magic, tuple count, tuples). Zone
// maps are rebuilt on decode, so the on-disk format stays minimal, like
// HDFS blocks that carry no index.
func (b *Block) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(serialMagic))
	dst = binary.AppendUvarint(dst, uint64(len(b.Tuples)))
	for _, t := range b.Tuples {
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		dst = t.AppendBinary(dst)
	}
	return dst
}

// Decode parses a serialized block, rebuilding zone maps.
func Decode(src []byte, s *schema.Schema) (*Block, error) {
	magic, n := binary.Uvarint(src)
	if n <= 0 || uint32(magic) != serialMagic {
		return nil, fmt.Errorf("block: bad magic")
	}
	pos := n
	count, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("block: bad tuple count")
	}
	pos += n
	b := New(s)
	for i := uint64(0); i < count; i++ {
		arity, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("block: tuple %d: bad arity", i)
		}
		pos += n
		t := make(tuple.Tuple, arity)
		for c := range t {
			// Interned decode: repeated short strings (flags, modes, names)
			// share one allocation across the whole decoded block set.
			v, vn, err := value.DecodeValueInterned(src[pos:])
			if err != nil {
				return nil, fmt.Errorf("block: tuple %d col %d: %w", i, c, err)
			}
			t[c] = v
			pos += vn
		}
		b.Append(t)
	}
	return b, nil
}
