package upfront

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var sch = schema.MustNew(
	schema.Column{Name: "a", Kind: value.Int},
	schema.Column{Name: "b", Kind: value.Int},
	schema.Column{Name: "c", Kind: value.Int},
	schema.Column{Name: "d", Kind: value.Int},
)

func genRows(n int, seed int64) []tuple.Tuple {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
		}
	}
	return rows
}

func TestDepthForBlocks(t *testing.T) {
	cases := []struct{ rows, per, want int }{
		{100, 100, 0},
		{100, 200, 0},
		{200, 100, 1},
		{300, 100, 2},
		{1600, 100, 4},
		{1000, 0, 0},
	}
	for _, c := range cases {
		if got := DepthForBlocks(c.rows, c.per); got != c.want {
			t.Errorf("DepthForBlocks(%d, %d) = %d, want %d", c.rows, c.per, got, c.want)
		}
	}
}

func TestBuildProducesBalancedTree(t *testing.T) {
	rows := genRows(4096, 1)
	tr := Builder{Schema: sch, Depth: 4, Seed: 7}.Build(rows)
	if tr.NumBuckets() != 16 {
		t.Fatalf("buckets = %d, want 16", tr.NumBuckets())
	}
	if tr.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", tr.Depth())
	}
	if tr.JoinAttr != -1 {
		t.Errorf("upfront tree should have no join attribute")
	}
	// Buckets should be roughly balanced thanks to median cuts.
	parts := Partition(tr, rows)
	want := len(rows) / 16
	for b, blk := range parts {
		if blk.Len() < want/3 || blk.Len() > want*3 {
			t.Errorf("bucket %d has %d rows, want ≈%d", b, blk.Len(), want)
		}
	}
}

func TestHeterogeneousBranchingUsesAllAttributes(t *testing.T) {
	rows := genRows(4096, 2)
	// Depth 4 over 4 attributes: the balancing rule should give each
	// attribute close to 15/4 splits.
	tr := Builder{Schema: sch, Depth: 4, Seed: 3}.Build(rows)
	levels := tr.AttrLevels()
	if len(levels) != 4 {
		t.Fatalf("attributes used = %v, want all 4", levels)
	}
	total := 0
	for _, n := range levels {
		total += n
	}
	if total != 15 { // 2^4 - 1 internal nodes
		t.Fatalf("internal nodes = %d, want 15", total)
	}
	for a, n := range levels {
		if n < 2 || n > 6 {
			t.Errorf("attribute %d used %d times; balancing is off: %v", a, n, levels)
		}
	}
}

func TestBuildRestrictedAttrs(t *testing.T) {
	rows := genRows(1024, 3)
	tr := Builder{Schema: sch, Attrs: []int{1, 2}, Depth: 3, Seed: 1}.Build(rows)
	for a := range tr.AttrLevels() {
		if a != 1 && a != 2 {
			t.Errorf("tree split on disallowed attribute %d", a)
		}
	}
}

func TestBuildDegenerateData(t *testing.T) {
	// All rows identical: no attribute can split, tree must degrade to a
	// single leaf rather than recursing forever.
	rows := make([]tuple.Tuple, 100)
	for i := range rows {
		rows[i] = tuple.Tuple{value.NewInt(5), value.NewInt(5), value.NewInt(5), value.NewInt(5)}
	}
	tr := Builder{Schema: sch, Depth: 4, Seed: 1}.Build(rows)
	if tr.NumBuckets() != 1 {
		t.Fatalf("degenerate data should produce 1 bucket, got %d", tr.NumBuckets())
	}
}

func TestBuildBinaryAttribute(t *testing.T) {
	// A two-valued attribute can be split exactly once per path.
	rows := make([]tuple.Tuple, 256)
	rng := rand.New(rand.NewSource(9))
	for i := range rows {
		rows[i] = tuple.Tuple{
			value.NewInt(rng.Int63n(2)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
			value.NewInt(rng.Int63n(1000)),
		}
	}
	tr := Builder{Schema: sch, Depth: 4, Seed: 1}.Build(rows)
	// Still a full-ish tree because other attributes absorb the splits.
	if tr.NumBuckets() < 8 {
		t.Errorf("buckets = %d, want ≥ 8", tr.NumBuckets())
	}
}

func TestPartitionRoutesEveryRow(t *testing.T) {
	rows := genRows(2048, 4)
	tr := Builder{Schema: sch, Depth: 3, Seed: 2}.Build(rows)
	parts := Partition(tr, rows)
	total := 0
	for _, blk := range parts {
		total += blk.Len()
	}
	if total != len(rows) {
		t.Fatalf("partitioned %d rows, want %d", total, len(rows))
	}
	// Each block's rows must actually route to that bucket.
	for b, blk := range parts {
		for _, r := range blk.Tuples {
			if tr.Route(r) != b {
				t.Fatalf("row %v in bucket %d routes to %d", r, b, tr.Route(r))
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	rows := genRows(1024, 5)
	t1 := Builder{Schema: sch, Depth: 3, Seed: 42}.Build(rows)
	t2 := Builder{Schema: sch, Depth: 3, Seed: 42}.Build(rows)
	if t1.String() != t2.String() {
		t.Errorf("same seed produced different trees")
	}
}

// Property: predicate lookup on a built tree is sound w.r.t. partitioned
// data — every matching row lives in a looked-up bucket.
func TestLookupSoundOnBuiltTreeQuick(t *testing.T) {
	rows := genRows(2048, 6)
	tr := Builder{Schema: sch, Depth: 4, Seed: 11}.Build(rows)
	parts := Partition(tr, rows)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := []predicate.Op{predicate.EQ, predicate.LT, predicate.LE, predicate.GT, predicate.GE}
		var preds []predicate.Predicate
		for i := 0; i <= rng.Intn(3); i++ {
			preds = append(preds, predicate.NewCmp(rng.Intn(4), ops[rng.Intn(len(ops))], value.NewInt(rng.Int63n(1000))))
		}
		hit := make(map[int32]bool)
		for _, b := range tr.Lookup(preds) {
			hit[int32(b)] = true
		}
		for b, blk := range parts {
			for _, r := range blk.Tuples {
				if predicate.MatchesAll(preds, r) && !hit[int32(b)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
