// Package upfront implements Amoeba's upfront partitioner (§3.1,
// Fig. 3): without any workload, recursively split the dataset into a
// balanced binary partitioning tree over as many attributes as possible,
// using heterogeneous branching so different subtrees may split on
// different attributes, and sample medians as cut points so blocks come
// out roughly equal sized despite skew.
package upfront

import (
	"math/rand"
	"sort"

	"adaptdb/internal/block"
	"adaptdb/internal/sample"
	"adaptdb/internal/schema"
	"adaptdb/internal/tree"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

// Builder configures an upfront partitioning run.
type Builder struct {
	Schema *schema.Schema
	// Attrs are the candidate partitioning attributes (column indexes).
	// Empty means all columns.
	Attrs []int
	// Depth is the number of tree levels, i.e. 2^Depth target buckets.
	// Amoeba derives it as ⌊log2(D/P)⌋ for dataset size D and block size
	// P; callers compute it with DepthForBlocks.
	Depth int
	// Seed drives attribute tie-breaking; runs are deterministic.
	Seed int64
}

// DepthForBlocks returns the tree depth needed so that numRows rows split
// into buckets of at most rowsPerBlock rows: ⌈log2(numRows/rowsPerBlock)⌉.
func DepthForBlocks(numRows, rowsPerBlock int) int {
	if rowsPerBlock <= 0 || numRows <= rowsPerBlock {
		return 0
	}
	d := 0
	need := (numRows + rowsPerBlock - 1) / rowsPerBlock
	for (1 << d) < need {
		d++
	}
	return d
}

// Build constructs the partitioning tree from a sample of the data.
// The returned tree has no join attribute (JoinAttr = -1).
func (b Builder) Build(rows []tuple.Tuple) *tree.Tree {
	attrs := b.Attrs
	if len(attrs) == 0 {
		attrs = make([]int, b.Schema.NumCols())
		for i := range attrs {
			attrs[i] = i
		}
	}
	rng := rand.New(rand.NewSource(b.Seed))
	ways := make(map[int]int, len(attrs))
	var next block.ID
	alloc := func() block.ID {
		id := next
		next++
		return id
	}
	root := GrowNode(rows, attrs, b.Depth, ways, rng, alloc)
	return tree.NewWithRoot(b.Schema, root, -1, 0)
}

// GrowNode recursively builds `depth` levels of heterogeneous-branching
// splits over attrs, choosing at each node the least-used attribute
// (fewest ways so far, matching Amoeba's goal that "the average number of
// ways each attribute is partitioned on is almost the same") that can
// actually split the local sample. ways is shared across the whole build
// so sibling subtrees naturally diversify. alloc hands out bucket IDs.
//
// Exported so two-phase partitioning can grow its lower, selection-
// attribute levels with the identical algorithm (§5.1 second phase).
func GrowNode(rows []tuple.Tuple, attrs []int, depth int, ways map[int]int, rng *rand.Rand, alloc func() block.ID) *tree.Node {
	if depth <= 0 {
		return &tree.Node{Leaf: true, Bucket: alloc()}
	}
	attr, cut, ok := chooseSplit(rows, attrs, ways, rng)
	if !ok {
		// No attribute can split the local sample further; stop early.
		return &tree.Node{Leaf: true, Bucket: alloc()}
	}
	ways[attr]++
	var left, right []tuple.Tuple
	for _, t := range rows {
		if value.Compare(t[attr], cut) <= 0 {
			left = append(left, t)
		} else {
			right = append(right, t)
		}
	}
	return &tree.Node{
		Attr:  attr,
		Cut:   cut,
		Left:  GrowNode(left, attrs, depth-1, ways, rng, alloc),
		Right: GrowNode(right, attrs, depth-1, ways, rng, alloc),
	}
}

// chooseSplit picks the least-used splittable attribute and its median
// cut. An attribute is splittable when the local sample has at least two
// distinct values for it. Returns ok=false when nothing can split.
func chooseSplit(rows []tuple.Tuple, attrs []int, ways map[int]int, rng *rand.Rand) (attr int, cut value.Value, ok bool) {
	type cand struct {
		attr int
		cut  value.Value
	}
	var best []cand
	bestWays := -1
	// Shuffle candidate order deterministically so ties break randomly but
	// reproducibly.
	order := append([]int(nil), attrs...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, a := range order {
		c, can := medianCut(rows, a)
		if !can {
			continue
		}
		w := ways[a]
		switch {
		case bestWays == -1 || w < bestWays:
			bestWays = w
			best = []cand{{a, c}}
		case w == bestWays:
			best = append(best, cand{a, c})
		}
	}
	if len(best) == 0 {
		return 0, value.Value{}, false
	}
	pick := best[0]
	return pick.attr, pick.cut, true
}

// medianCut returns a cut point for attr such that the local sample is
// split into two non-empty halves: the lower median of the distinct
// values. Reports false when fewer than two distinct values exist.
func medianCut(rows []tuple.Tuple, attr int) (value.Value, bool) {
	vals := sample.Column(rows, attr)
	if len(vals) < 2 {
		return value.Value{}, false
	}
	sorted := sample.SortValues(append([]value.Value(nil), vals...))
	// Deduplicate to guarantee cut < max so both sides are non-empty.
	distinct := sorted[:1]
	for _, v := range sorted[1:] {
		if value.Compare(v, distinct[len(distinct)-1]) != 0 {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) < 2 {
		return value.Value{}, false
	}
	// Use the value at the median *position* of the full (non-distinct)
	// sorted sample when possible, clamped below max, so skewed data still
	// yields balanced halves.
	med := sorted[(len(sorted)-1)/2]
	if value.Compare(med, distinct[len(distinct)-1]) == 0 {
		// Median equals max: step down to the previous distinct value.
		i := sort.Search(len(distinct), func(i int) bool {
			return value.Compare(distinct[i], med) >= 0
		})
		med = distinct[i-1]
	}
	return med, true
}

// Partition routes every row through the tree, returning the physical
// blocks keyed by bucket ID. This is the single load pass Amoeba performs
// after computing the tree from the sample.
func Partition(t *tree.Tree, rows []tuple.Tuple) map[block.ID]*block.Block {
	out := make(map[block.ID]*block.Block)
	for _, r := range rows {
		b := t.Route(r)
		blk, ok := out[b]
		if !ok {
			blk = block.New(t.Schema)
			out[b] = blk
		}
		blk.Append(r)
	}
	return out
}
