package hyperjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

// --- BitVec ---

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	if len(v) != 3 {
		t.Fatalf("width: got %d words", len(v))
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Get(1) || v.Get(128) {
		t.Errorf("unexpected bits set")
	}
	if v.PopCount() != 3 {
		t.Errorf("PopCount = %d, want 3", v.PopCount())
	}
	ones := v.Ones()
	if len(ones) != 3 || ones[0] != 0 || ones[1] != 64 || ones[2] != 129 {
		t.Errorf("Ones = %v", ones)
	}
}

func TestBitVecOps(t *testing.T) {
	a, b := NewBitVec(64), NewBitVec(64)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	if a.OrPopCount(b) != 3 {
		t.Errorf("OrPopCount = %d, want 3", a.OrPopCount(b))
	}
	if a.AndNotPopCount(b) != 1 { // b adds bit 3 only
		t.Errorf("AndNotPopCount = %d, want 1", a.AndNotPopCount(b))
	}
	c := a.Clone()
	c.OrInto(b)
	if c.PopCount() != 3 || a.PopCount() != 2 {
		t.Errorf("OrInto/Clone aliasing problem")
	}
	if !c.Equal(c.Clone()) || c.Equal(a) {
		t.Errorf("Equal wrong")
	}
	if a.Equal(NewBitVec(128)) {
		t.Errorf("different widths should not be equal")
	}
}

// --- overlap vectors ---

func halfOpen(lo, hi int64) predicate.Range {
	return predicate.Range{HasLo: true, Lo: value.NewInt(lo), HasHi: true, Hi: value.NewInt(hi), HiOpen: true}
}

// figure4 builds the paper's Figure 4 instance.
func figure4() []BitVec {
	r := []predicate.Range{halfOpen(0, 100), halfOpen(100, 200), halfOpen(200, 300), halfOpen(300, 400)}
	s := []predicate.Range{halfOpen(0, 150), halfOpen(150, 250), halfOpen(250, 350), halfOpen(350, 400)}
	return OverlapVectors(r, s)
}

func bitsOf(v BitVec) string {
	out := make([]byte, 4)
	for i := 0; i < 4; i++ {
		if v.Get(i) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

func TestFigure4OverlapVectors(t *testing.T) {
	V := figure4()
	// Paper: V = {v1=1000, v2=1100, v3=0110, v4=0011}.
	want := []string{"1000", "1100", "0110", "0011"}
	for i, w := range want {
		if got := bitsOf(V[i]); got != w {
			t.Errorf("v%d = %s, want %s", i+1, got, w)
		}
	}
}

func TestFigure4OptimalGrouping(t *testing.T) {
	V := figure4()
	// Paper: with B=2, P = {{r1,r2},{r3,r4}} is optimal with C(P) = 5.
	res := Exact(V, 2, ExactOptions{})
	if !res.Optimal {
		t.Fatalf("tiny instance should solve to optimality")
	}
	if res.Cost != 5 {
		t.Errorf("optimal cost = %d, want 5 (paper §4.1.1)", res.Cost)
	}
	if err := Validate(res.Grouping, 4, 2); err != nil {
		t.Errorf("invalid grouping: %v", err)
	}
	// The bottom-up heuristic also achieves 5 here.
	bu := BottomUp(V, 2)
	if got := Cost(bu, V); got != 5 {
		t.Errorf("bottom-up cost = %d, want 5", got)
	}
}

// TestPaperExample1 reproduces Example 1 from the introduction:
// v1={B1,B2}, v2={B1,B2,B3}, v3={B2,B3}, memory for 2 blocks.
// Grouping {A1,A3},{A2} reads 6 blocks; {A1,A2},{A3} reads 5.
func TestPaperExample1(t *testing.T) {
	v1, v2, v3 := NewBitVec(3), NewBitVec(3), NewBitVec(3)
	v1.Set(0)
	v1.Set(1)
	v2.Set(0)
	v2.Set(1)
	v2.Set(2)
	v3.Set(1)
	v3.Set(2)
	V := []BitVec{v1, v2, v3}

	bad := Grouping{{0, 2}, {1}}
	if got := Cost(bad, V); got != 6 {
		t.Errorf("cost({A1,A3},{A2}) = %d, want 6", got)
	}
	good := Grouping{{0, 1}, {2}}
	if got := Cost(good, V); got != 5 {
		t.Errorf("cost({A1,A2},{A3}) = %d, want 5", got)
	}
	res := Exact(V, 2, ExactOptions{})
	if res.Cost != 5 || !res.Optimal {
		t.Errorf("exact = %+v, want optimal cost 5", res)
	}
}

// --- grouping algorithms ---

func randomV(n, m int, density float64, seed int64) []BitVec {
	rng := rand.New(rand.NewSource(seed))
	V := make([]BitVec, n)
	for i := range V {
		v := NewBitVec(m)
		// Interval-style overlap: each R block overlaps a contiguous run of
		// S blocks, like real zone maps.
		start := rng.Intn(m)
		length := 1 + rng.Intn(int(float64(m)*density)+1)
		for j := start; j < start+length && j < m; j++ {
			v.Set(j)
		}
		V[i] = v
	}
	return V
}

func TestValidate(t *testing.T) {
	V := figure4()
	if err := Validate(Grouping{{0, 1}, {2, 3}}, 4, 2); err != nil {
		t.Errorf("valid grouping rejected: %v", err)
	}
	if err := Validate(Grouping{{0, 1, 2}, {3}}, 4, 2); err == nil {
		t.Errorf("oversized group accepted")
	}
	if err := Validate(Grouping{{0, 1}, {1, 2}}, 4, 2); err == nil {
		t.Errorf("duplicate accepted")
	}
	if err := Validate(Grouping{{0, 1}}, 4, 2); err == nil {
		t.Errorf("incomplete grouping accepted")
	}
	if err := Validate(Grouping{{0, 9}}, 4, 2); err == nil {
		t.Errorf("out-of-range index accepted")
	}
	_ = V
}

func TestBottomUpRespectsConstraints(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		V := randomV(17, 32, 0.3, seed)
		for _, B := range []int{1, 2, 4, 7, 17, 100} {
			g := BottomUp(V, B)
			if err := Validate(g, len(V), B); err != nil {
				t.Fatalf("seed %d B %d: %v", seed, B, err)
			}
		}
	}
}

func TestBottomUpEmptyAndDegenerate(t *testing.T) {
	if BottomUp(nil, 4) != nil {
		t.Errorf("empty input should give nil")
	}
	V := randomV(5, 8, 0.5, 1)
	g := BottomUp(V, 0) // B clamped to 1
	if err := Validate(g, 5, 1); err != nil {
		t.Errorf("B=0: %v", err)
	}
	if len(g) != 5 {
		t.Errorf("B=1 should give singleton groups, got %d", len(g))
	}
}

func TestGreedyBestSeedRespectsConstraints(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		V := randomV(12, 16, 0.4, seed)
		for _, B := range []int{2, 3, 5} {
			g := GreedyBestSeed(V, B)
			if err := Validate(g, len(V), B); err != nil {
				t.Fatalf("seed %d B %d: %v", seed, B, err)
			}
		}
	}
	if GreedyBestSeed(nil, 2) != nil {
		t.Errorf("empty input should give nil")
	}
}

func TestFirstFit(t *testing.T) {
	V := randomV(10, 16, 0.4, 3)
	g := FirstFit(V, 4)
	if err := Validate(g, 10, 4); err != nil {
		t.Fatalf("%v", err)
	}
	if len(g) != 3 || len(g[0]) != 4 || len(g[2]) != 2 {
		t.Errorf("chunking wrong: %v", g)
	}
	if FirstFit(nil, 2) != nil {
		t.Errorf("empty input should give nil")
	}
	g = FirstFit(V, 0)
	if err := Validate(g, 10, 1); err != nil {
		t.Errorf("B=0: %v", err)
	}
}

// Exact matches the brute-force oracle on small random instances.
func TestExactMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		n := 4 + int(seed%5) // 4..8 blocks
		V := randomV(n, 10, 0.4, seed)
		for _, B := range []int{2, 3} {
			_, want := BruteForce(V, B)
			res := Exact(V, B, ExactOptions{})
			if !res.Optimal {
				t.Fatalf("seed %d: tiny instance timed out", seed)
			}
			if res.Cost != want {
				t.Errorf("seed %d n %d B %d: exact %d, brute force %d", seed, n, B, res.Cost, want)
			}
			if got := Cost(res.Grouping, V); got != res.Cost {
				t.Errorf("reported cost %d != recomputed %d", res.Cost, got)
			}
			if err := Validate(res.Grouping, n, B); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

// Heuristics are never better than the optimum, and exact is never worse
// than any heuristic.
func TestExactLowerBoundsHeuristicsQuick(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int(uint64(seed)%6)
		V := randomV(n, 12, 0.4, seed)
		B := 2 + int(uint64(seed)%3)
		opt := Exact(V, B, ExactOptions{}).Cost
		if Cost(BottomUp(V, B), V) < opt {
			return false
		}
		if Cost(GreedyBestSeed(V, B), V) < opt {
			return false
		}
		if Cost(FirstFit(V, B), V) < opt {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactTimeoutReturnsIncumbent(t *testing.T) {
	V := randomV(40, 64, 0.5, 9)
	res := Exact(V, 5, ExactOptions{MaxSteps: 100})
	if res.Optimal {
		t.Skip("instance solved in 100 steps; cannot exercise timeout")
	}
	if err := Validate(res.Grouping, 40, 5); err != nil {
		t.Fatalf("timeout incumbent invalid: %v", err)
	}
	if res.Cost != Cost(res.Grouping, V) {
		t.Errorf("timeout cost mismatch")
	}
	// Incumbent comes from BottomUp, so it can't be worse than it.
	if res.Cost > Cost(BottomUp(V, 5), V) {
		t.Errorf("incumbent worse than bottom-up")
	}
}

// The co-partitioned case: when each R block overlaps exactly one S
// block, any sane grouping reaches the lower bound m, i.e. CHyJ = 1
// (§4.2: "For a completely co-partitioned table, CHyJ will be 1").
func TestCoPartitionedReachesLowerBound(t *testing.T) {
	n := 16
	V := make([]BitVec, n)
	for i := range V {
		v := NewBitVec(n)
		v.Set(i)
		V[i] = v
	}
	for _, B := range []int{1, 2, 4, 8} {
		if got := Cost(BottomUp(V, B), V); got != n {
			t.Errorf("B=%d: co-partitioned cost %d, want %d", B, got, n)
		}
	}
}

// Larger buffer never hurts the bottom-up heuristic on interval-shaped
// overlaps (the Fig. 14 monotone trend).
func TestBottomUpBufferMonotoneOnIntervals(t *testing.T) {
	V := randomV(64, 64, 0.2, 42)
	prev := 1 << 30
	for _, B := range []int{1, 2, 4, 8, 16, 32, 64} {
		c := Cost(BottomUp(V, B), V)
		if c > prev {
			t.Errorf("B=%d cost %d worse than smaller buffer %d", B, c, prev)
		}
		prev = c
	}
}

func TestUnionHelper(t *testing.T) {
	V := figure4()
	u := Union(V, []int{0, 1})
	if bitsOf(u) != "1100" {
		t.Errorf("Union = %s, want 1100", bitsOf(u))
	}
	if Union(nil, nil) != nil {
		t.Errorf("Union of nothing should be nil")
	}
}
