package hyperjoin

import "adaptdb/internal/predicate"

// OverlapVectors computes V = {v_1..v_n}: for each R block i, the set of
// S blocks whose join-attribute range intersects R block i's (§4.1.1,
// "vij = 1(Ranget(ri) ∩ Ranget(sj) ≠ ∅)"). rRanges and sRanges are the
// zone-map intervals of the two relations' blocks on the join attribute.
// The straightforward O(n·m) algorithm matches the paper.
func OverlapVectors(rRanges, sRanges []predicate.Range) []BitVec {
	out := make([]BitVec, len(rRanges))
	for i, rr := range rRanges {
		v := NewBitVec(len(sRanges))
		for j, sr := range sRanges {
			if rr.Overlaps(sr) {
				v.Set(j)
			}
		}
		out[i] = v
	}
	return out
}

// Grouping is a partitioning P of R's block indexes: disjoint groups
// whose union is {0..n-1}, each of size ≤ B.
type Grouping [][]int

// Cost computes C(P) = Σ_p δ(ṽ(p)): the total number of S blocks read
// across all groups, counting repeats (§4.1.1).
func Cost(g Grouping, V []BitVec) int {
	total := 0
	for _, p := range g {
		total += Union(V, p).PopCount()
	}
	return total
}

// Validate checks the Problem 1 constraints: every block appears exactly
// once and no group exceeds B.
func Validate(g Grouping, n, B int) error {
	seen := make([]bool, n)
	count := 0
	for gi, p := range g {
		if len(p) > B {
			return errGroupTooBig(gi, len(p), B)
		}
		for _, i := range p {
			if i < 0 || i >= n {
				return errBadIndex(i, n)
			}
			if seen[i] {
				return errDuplicate(i)
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		return errIncomplete(count, n)
	}
	return nil
}
