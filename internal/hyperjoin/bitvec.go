package hyperjoin

import "math/bits"

// BitVec is a fixed-width bitset over S-block indexes: the paper's
// overlap vector v_i, where bit j means "R block i overlaps S block j on
// the join attribute".
type BitVec []uint64

// NewBitVec returns an all-zero vector able to hold m bits.
func NewBitVec(m int) BitVec {
	return make(BitVec, (m+63)/64)
}

// Set sets bit i.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone copies the vector.
func (v BitVec) Clone() BitVec {
	out := make(BitVec, len(v))
	copy(out, v)
	return out
}

// OrInto sets v |= o. The vectors must have equal width.
func (v BitVec) OrInto(o BitVec) {
	for i := range v {
		v[i] |= o[i]
	}
}

// PopCount returns δ(v): the number of set bits.
func (v BitVec) PopCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// OrPopCount returns δ(v ∨ o) without allocating — the inner operation
// of both heuristics' argmin loops.
func (v BitVec) OrPopCount(o BitVec) int {
	n := 0
	for i := range v {
		n += bits.OnesCount64(v[i] | o[i])
	}
	return n
}

// AndNotPopCount returns δ(o ∧ ¬v): how many *new* bits o would add to
// v. Equivalent to OrPopCount(o) - PopCount() but cheaper to reason
// about in bounds computations.
func (v BitVec) AndNotPopCount(o BitVec) int {
	n := 0
	for i := range v {
		n += bits.OnesCount64(o[i] &^ v[i])
	}
	return n
}

// Equal reports bitwise equality.
func (v BitVec) Equal(o BitVec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// Ones returns the indexes of the set bits, ascending.
func (v BitVec) Ones() []int {
	var out []int
	for i, w := range v {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &= w - 1
		}
	}
	return out
}

// Union returns ṽ(p): the union vector of the given R-block vectors.
func Union(V []BitVec, group []int) BitVec {
	if len(V) == 0 {
		return nil
	}
	u := NewBitVec(len(V[0]) * 64)
	for _, i := range group {
		u.OrInto(V[i])
	}
	return u
}
