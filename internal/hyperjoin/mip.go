package hyperjoin

import (
	"adaptdb/internal/ilp"
	"adaptdb/internal/lp"
)

// BuildMIP encodes Problem 1 as the §4.1.2 mixed-integer program:
//
//	variables  x_{i,k} ∈ {0,1}  (block i of R in partition k; i<n, k<c)
//	           y_{j,k} ∈ [0,1]  (bit j of ṽ(p_k); j<m)
//	minimize   Σ_{j,k} y_{j,k}
//	s.t.       Σ_i x_{i,k} ≤ B            ∀k   (memory budget)
//	           Σ_k x_{i,k} = 1            ∀i   (each block assigned once)
//	           y_{j,k} ≥ x_{i,k}          ∀i,k, ∀j with v_ij = 1
//
// Only x needs integrality: once x is 0/1, minimization drives each y to
// max_i x, which is already 0/1. c = ⌈n/B⌉ as in the paper.
func BuildMIP(V []BitVec, B int) (ilp.Problem, int, int) {
	n := len(V)
	if B < 1 {
		B = 1
	}
	c := (n + B - 1) / B
	m := 0
	if n > 0 {
		m = len(V[0]) * 64
	}
	nx := n * c
	ny := m * c
	nv := nx + ny
	xIdx := func(i, k int) int { return i*c + k }
	yIdx := func(j, k int) int { return nx + j*c + k }

	obj := make([]float64, nv)
	for j := 0; j < m; j++ {
		for k := 0; k < c; k++ {
			obj[yIdx(j, k)] = 1
		}
	}

	var cons []lp.Constraint
	// Budget per partition.
	for k := 0; k < c; k++ {
		coef := make([]float64, nv)
		for i := 0; i < n; i++ {
			coef[xIdx(i, k)] = 1
		}
		cons = append(cons, lp.Constraint{Coef: coef, Sense: lp.LE, RHS: float64(B)})
	}
	// Assignment.
	for i := 0; i < n; i++ {
		coef := make([]float64, nv)
		for k := 0; k < c; k++ {
			coef[xIdx(i, k)] = 1
		}
		cons = append(cons, lp.Constraint{Coef: coef, Sense: lp.EQ, RHS: 1})
	}
	// Linking: x_{i,k} - y_{j,k} ≤ 0 for each overlap (i, j).
	for i := 0; i < n; i++ {
		for _, j := range V[i].Ones() {
			for k := 0; k < c; k++ {
				coef := make([]float64, nv)
				coef[xIdx(i, k)] = 1
				coef[yIdx(j, k)] = -1
				cons = append(cons, lp.Constraint{Coef: coef, Sense: lp.LE, RHS: 0})
			}
		}
	}
	isInt := make([]bool, nv)
	for v := 0; v < nx; v++ {
		isInt[v] = true
	}
	return ilp.Problem{
		LP:    lp.Problem{NumVars: nv, Objective: obj, Constraints: cons},
		IsInt: isInt,
	}, n, c
}

// MIPResult is the decoded outcome of SolveMIP.
type MIPResult struct {
	Grouping Grouping
	Cost     int
	Optimal  bool
	Nodes    int
}

// SolveMIP builds and solves the §4.1.2 program with the branch-and-
// bound MIP solver, decoding the assignment back into a Grouping. It is
// the slow-but-optimal baseline of Fig. 17; use Exact for the faster
// specialized search and BottomUp for production.
func SolveMIP(V []BitVec, B int, opt ilp.Options) MIPResult {
	n := len(V)
	if n == 0 {
		return MIPResult{Optimal: true}
	}
	prob, _, c := BuildMIP(V, B)
	res := ilp.Solve(prob, opt)
	if res.X == nil {
		return MIPResult{Optimal: false, Nodes: res.Nodes}
	}
	groups := make(Grouping, c)
	for i := 0; i < n; i++ {
		for k := 0; k < c; k++ {
			if res.X[i*c+k] > 0.5 {
				groups[k] = append(groups[k], i)
				break
			}
		}
	}
	var out Grouping
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return MIPResult{
		Grouping: out,
		Cost:     Cost(out, V),
		Optimal:  res.Status == ilp.Optimal,
		Nodes:    res.Nodes,
	}
}
