package hyperjoin

import "fmt"

func errGroupTooBig(g, size, B int) error {
	return fmt.Errorf("hyperjoin: group %d has %d blocks, budget is %d", g, size, B)
}
func errBadIndex(i, n int) error {
	return fmt.Errorf("hyperjoin: block index %d out of range [0,%d)", i, n)
}
func errDuplicate(i int) error {
	return fmt.Errorf("hyperjoin: block %d assigned twice", i)
}
func errIncomplete(got, want int) error {
	return fmt.Errorf("hyperjoin: grouping covers %d of %d blocks", got, want)
}

// BottomUp is the paper's practical algorithm (Fig. 6): grow one group at
// a time, repeatedly merging in the remaining block r_i with the smallest
// δ(r_i ∨ ṽ(P)); close the group when it reaches B blocks (or blocks run
// out) and start a new one. A straightforward implementation is O(n²)
// scans of the remaining blocks, as the paper notes.
func BottomUp(V []BitVec, B int) Grouping {
	n := len(V)
	if n == 0 {
		return nil
	}
	if B < 1 {
		B = 1
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}
	var out Grouping
	var cur []int
	width := len(V[0]) * 64
	union := NewBitVec(width)
	for len(remaining) > 0 {
		// argmin over remaining of δ(v_i ∨ union); ties break to the
		// lowest index for determinism.
		bestPos, bestCost := 0, -1
		for pos, i := range remaining {
			c := union.OrPopCount(V[i])
			if bestCost == -1 || c < bestCost {
				bestPos, bestCost = pos, c
			}
		}
		pick := remaining[bestPos]
		remaining[bestPos] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		cur = append(cur, pick)
		union.OrInto(V[pick])
		if len(cur) == B || len(remaining) == 0 {
			out = append(out, cur)
			cur = nil
			union = NewBitVec(width)
		}
	}
	return out
}

// GreedyBestSeed approximates the Fig. 5 formulation ("generate P from
// min(B,|R|) blocks with smallest δ(ṽ(P))"): since choosing that best
// group is itself NP-hard (§4.1.4), each round tries every remaining
// block as a seed, grows a candidate group greedily to B, and keeps the
// cheapest candidate. O(n³) overall — slower than BottomUp but closer to
// per-round optimal; the experiments compare both.
func GreedyBestSeed(V []BitVec, B int) Grouping {
	n := len(V)
	if n == 0 {
		return nil
	}
	if B < 1 {
		B = 1
	}
	remaining := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		remaining[i] = true
	}
	width := len(V[0]) * 64
	var out Grouping
	for len(remaining) > 0 {
		size := B
		if len(remaining) < size {
			size = len(remaining)
		}
		bestGroup := []int(nil)
		bestCost := -1
		for seed := 0; seed < n; seed++ {
			if !remaining[seed] {
				continue
			}
			group := []int{seed}
			union := V[seed].Clone()
			used := map[int]bool{seed: true}
			for len(group) < size {
				pick, pickCost := -1, -1
				for cand := 0; cand < n; cand++ {
					if !remaining[cand] || used[cand] {
						continue
					}
					c := union.OrPopCount(V[cand])
					if pickCost == -1 || c < pickCost {
						pick, pickCost = cand, c
					}
				}
				if pick == -1 {
					break
				}
				group = append(group, pick)
				used[pick] = true
				union.OrInto(V[pick])
			}
			if c := union.PopCount(); bestCost == -1 || c < bestCost {
				bestGroup, bestCost = group, c
			}
		}
		for _, i := range bestGroup {
			delete(remaining, i)
		}
		out = append(out, bestGroup)
		_ = width
	}
	return out
}

// FirstFit is the trivial baseline: consecutive chunks of B blocks in
// index order. It models what a system gets with no grouping
// intelligence at all (Example 1's "bad" choice arises this way for
// unfortunate orders).
func FirstFit(V []BitVec, B int) Grouping {
	n := len(V)
	if n == 0 {
		return nil
	}
	if B < 1 {
		B = 1
	}
	var out Grouping
	for lo := 0; lo < n; lo += B {
		hi := lo + B
		if hi > n {
			hi = n
		}
		g := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			g = append(g, i)
		}
		out = append(out, g)
	}
	return out
}
