package hyperjoin

import "sort"

// ExactOptions bounds the exact search. The paper's GLPK runs took 20
// minutes at a 32-block budget and did not finish in 96 hours at 16
// blocks (Fig. 17b); MaxSteps plays the role of that wall-clock cap so
// experiments report "timed out" instead of hanging.
type ExactOptions struct {
	// MaxSteps caps search-tree nodes; 0 means a generous default.
	MaxSteps int64
}

// ExactResult is the outcome of the exact optimizer.
type ExactResult struct {
	Grouping Grouping
	Cost     int
	// Optimal is true when the search finished; false means the step
	// budget ran out and Grouping is the best incumbent found.
	Optimal bool
	// Steps is the number of search nodes expanded.
	Steps int64
}

// Exact solves Problem 1 (§4.1.1) to optimality by branch and bound over
// block-to-partition assignments — the role of the mixed-integer program
// in §4.1.2. Partitions are capped at B blocks and at most c = ⌈n/B⌉
// partitions are used (using fewer is never worse, since merging two
// groups only removes double-counted bits).
//
// Bounding: for each S block j, let r_j be the number of unassigned R
// blocks overlapping j and freeCap_j the spare capacity of partitions
// already covering j. At least ⌈max(0, r_j−freeCap_j)/B⌉ additional
// partitions must come to cover j, each adding one bit. The bound sums
// these per-bit increments over j; symmetry is broken by allowing at
// most one empty partition as an assignment target.
func Exact(V []BitVec, B int, opt ExactOptions) ExactResult {
	n := len(V)
	if n == 0 {
		return ExactResult{Optimal: true}
	}
	if B < 1 {
		B = 1
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 50_000_000
	}
	c := (n + B - 1) / B

	// Heavy blocks first: more bits set earlier tightens the bound.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return V[order[a]].PopCount() > V[order[b]].PopCount()
	})

	m := len(V[0]) * 64
	// rem[j] = unassigned blocks covering bit j, maintained over `order`.
	rem := make([]int, m)
	for _, v := range V {
		for _, j := range v.Ones() {
			rem[j]++
		}
	}

	// Incumbent from the practical heuristic.
	inc := BottomUp(V, B)
	best := Cost(inc, V)
	bestAssign := make([]int, n)
	for g, grp := range inc {
		for _, i := range grp {
			bestAssign[i] = g
		}
	}

	unions := make([]BitVec, c)
	sizes := make([]int, c)
	for k := range unions {
		unions[k] = NewBitVec(m)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	var steps int64
	timedOut := false

	lowerBound := func(cur int) int {
		lb := cur
		for j := 0; j < m; j++ {
			rj := rem[j]
			if rj == 0 {
				continue
			}
			free := 0
			for k := 0; k < c; k++ {
				if sizes[k] > 0 && sizes[k] < B && unions[k].Get(j) {
					free += B - sizes[k]
				}
			}
			if rj > free {
				lb += (rj - free + B - 1) / B
			}
		}
		return lb
	}

	var dfs func(t, cur int)
	dfs = func(t, cur int) {
		if timedOut {
			return
		}
		steps++
		if steps > maxSteps {
			timedOut = true
			return
		}
		if cur >= best {
			return
		}
		if t == n {
			best = cur
			copy(bestAssign, assign)
			return
		}
		if lowerBound(cur) >= best {
			return
		}
		i := order[t]
		// Decrement remaining coverage for i's bits while it is "being
		// placed".
		ones := V[i].Ones()
		for _, j := range ones {
			rem[j]--
		}
		usedEmpty := false
		for k := 0; k < c; k++ {
			if sizes[k] >= B {
				continue
			}
			if sizes[k] == 0 {
				if usedEmpty {
					continue // symmetry: all empty partitions equivalent
				}
				usedEmpty = true
			}
			add := unions[k].AndNotPopCount(V[i])
			if cur+add >= best {
				continue
			}
			// Apply.
			var flipped []int
			for _, j := range ones {
				if !unions[k].Get(j) {
					unions[k].Set(j)
					flipped = append(flipped, j)
				}
			}
			sizes[k]++
			assign[i] = k
			dfs(t+1, cur+add)
			// Undo.
			assign[i] = -1
			sizes[k]--
			for _, j := range flipped {
				unions[k][j/64] &^= 1 << (uint(j) % 64)
			}
			if timedOut {
				break
			}
		}
		for _, j := range ones {
			rem[j]++
		}
	}
	dfs(0, 0)

	groups := make(Grouping, c)
	for i, g := range bestAssign {
		groups[g] = append(groups[g], i)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return ExactResult{Grouping: out, Cost: best, Optimal: !timedOut, Steps: steps}
}

// BruteForce enumerates every partitioning of n ≤ 12 blocks into groups
// of at most B and returns the optimum. It exists purely as a test
// oracle for Exact and the heuristics.
func BruteForce(V []BitVec, B int) (Grouping, int) {
	n := len(V)
	if n == 0 {
		return nil, 0
	}
	c := (n + B - 1) / B
	assign := make([]int, n)
	best := 1 << 30
	var bestAssign []int
	var rec func(t, used int)
	rec = func(t, used int) {
		if t == n {
			sizes := make([]int, used)
			unions := make([]BitVec, used)
			for k := range unions {
				unions[k] = NewBitVec(len(V[0]) * 64)
			}
			for i, g := range assign {
				sizes[g]++
				if sizes[g] > B {
					return
				}
				unions[g].OrInto(V[i])
			}
			cost := 0
			for _, u := range unions {
				cost += u.PopCount()
			}
			if cost < best {
				best = cost
				bestAssign = append([]int(nil), assign...)
			}
			return
		}
		for k := 0; k <= used && k < c; k++ {
			assign[t] = k
			nu := used
			if k == used {
				nu++
			}
			rec(t+1, nu)
		}
	}
	rec(0, 0)
	groups := make(Grouping, c)
	for i, g := range bestAssign {
		groups[g] = append(groups[g], i)
	}
	var out Grouping
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out, best
}
