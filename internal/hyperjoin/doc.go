// Package hyperjoin implements the hyper-join block-grouping problem of
// §4.1: given the overlap structure between the blocks of two relations
// R and S on a join attribute, partition R's blocks into groups of at
// most B (the memory budget) so that the total number of S-block reads —
// C(P) = Σ δ(ṽ(p)) — is minimized.
//
// Paper mapping:
//
//   - §4.1.1 — OverlapVectors derives each R block's bit vector of
//     overlapping S blocks from zone-map join ranges (BitVec).
//   - §4.1.2 — the MIP formulation; Exact is a branch-and-bound
//     optimizer standing in for the paper's GLPK solver at evaluation
//     scale (compared against the heuristics in Fig. 17).
//   - §4.1.3, Fig. 5 — the per-round greedy grouping formulation.
//   - §4.1.3, Fig. 6 — BottomUp, the practical bottom-up heuristic the
//     executor uses; FirstFit is the trivial baseline.
//   - §4.1.4 — finding even one optimal group is NP-hard (by reduction
//     from maximum k-subset intersection), which is why the heuristics
//     exist at all.
//
// The executor (internal/exec) turns a Grouping into the actual grouped
// build/probe schedule; Cost prices a grouping in S-block reads before
// anything runs.
package hyperjoin
