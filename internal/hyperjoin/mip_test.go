package hyperjoin

import (
	"testing"

	"adaptdb/internal/ilp"
)

func TestBuildMIPDimensions(t *testing.T) {
	V := figure4() // n=4, m (width) = 64 after rounding, but bits only 0..3
	prob, n, c := BuildMIP(V, 2)
	if n != 4 || c != 2 {
		t.Fatalf("n=%d c=%d, want 4, 2", n, c)
	}
	// Vars: 4*2 x + 64*2 y.
	if prob.LP.NumVars != 8+128 {
		t.Errorf("NumVars = %d", prob.LP.NumVars)
	}
	// Integrality only on x.
	for v := 0; v < 8; v++ {
		if !prob.IsInt[v] {
			t.Errorf("x var %d not integer", v)
		}
	}
	for v := 8; v < prob.LP.NumVars; v++ {
		if prob.IsInt[v] {
			t.Errorf("y var %d should be continuous", v)
		}
	}
	// Constraints: c budget + n assignment + links (Σ overlaps × c).
	links := 0
	for _, v := range V {
		links += v.PopCount()
	}
	want := 2 + 4 + links*2
	if len(prob.LP.Constraints) != want {
		t.Errorf("constraints = %d, want %d", len(prob.LP.Constraints), want)
	}
}

func TestSolveMIPFigure4(t *testing.T) {
	V := figure4()
	res := SolveMIP(V, 2, ilp.Options{})
	if !res.Optimal {
		t.Fatalf("figure 4 MIP should solve to optimality: %+v", res)
	}
	if res.Cost != 5 {
		t.Errorf("MIP cost = %d, want 5", res.Cost)
	}
	if err := Validate(res.Grouping, 4, 2); err != nil {
		t.Errorf("invalid grouping: %v", err)
	}
}

func TestSolveMIPMatchesExactSmall(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		V := randomV(5, 6, 0.5, seed)
		B := 2
		want := Exact(V, B, ExactOptions{})
		got := SolveMIP(V, B, ilp.Options{MaxNodes: 100000})
		if !got.Optimal {
			t.Fatalf("seed %d: MIP did not finish", seed)
		}
		if got.Cost != want.Cost {
			t.Errorf("seed %d: MIP %d, exact B&B %d", seed, got.Cost, want.Cost)
		}
		if err := Validate(got.Grouping, 5, B); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestSolveMIPEmpty(t *testing.T) {
	res := SolveMIP(nil, 2, ilp.Options{})
	if !res.Optimal || res.Cost != 0 {
		t.Errorf("empty MIP: %+v", res)
	}
}

func TestSolveMIPExample1(t *testing.T) {
	v1, v2, v3 := NewBitVec(3), NewBitVec(3), NewBitVec(3)
	v1.Set(0)
	v1.Set(1)
	v2.Set(0)
	v2.Set(1)
	v2.Set(2)
	v3.Set(1)
	v3.Set(2)
	res := SolveMIP([]BitVec{v1, v2, v3}, 2, ilp.Options{})
	if !res.Optimal || res.Cost != 5 {
		t.Errorf("Example 1 MIP: %+v, want optimal cost 5", res)
	}
}
