// Package serve is the multi-tenant serving layer: one long-lived
// Service owns a dfs.Store, a template executor, a shared plan cache
// and an admission controller, and any number of concurrent client
// streams execute queries through it.
//
// Ownership rules (the query-context refactor):
//
//   - The Service owns what is shared and immutable per query: the
//     store, the executor template (flags, spill fs), the plan cache,
//     the global admission budget, and the per-table partitioning
//     epochs.
//   - Each query owns what it mutates: a context (cancellation and
//     deadline), a private cluster.Meter, a MemBudget share sized to
//     its admission reservation, and — in distributed mode — a private
//     NodeSet with per-node meter shards. exec.Executor.ForQuery
//     derives that view; it lives for one compile/drain cycle.
//   - Each tenant owns its adaptation state: an optimizer.Optimizer
//     whose per-table workload.Windows track only that tenant's
//     queries, so one tenant's drift repartitions without another's
//     window diluting the vote.
//
// Concurrency model: table layouts (core.Table) carry no locks, so the
// Service serializes adaptation against execution with one RWMutex —
// queries compile and drain under the read lock, repartitioning steps
// run under the write lock and bump the touched tables' epochs before
// releasing it. The plan cache keys on those epochs, which is the
// entire invalidation story:
//
//	query:  RLock → read epoch E → compile (cache keyed @E) → drain → RUnlock
//	adapt:  Lock  → migrate blocks → epoch E+1 → Unlock
//
// A cached fragment compiled @E can only be replayed while the layout
// that produced it is still current; after the bump its key is
// unreachable and the next compile re-prices against the new layout.
package serve

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/query"
	"adaptdb/internal/session"
	"adaptdb/internal/tuple"
)

// minReserve floors a query's admission reservation: even a pure scan
// holds batch buffers, and a zero reservation would let unlimited
// queries through a saturated service.
const minReserve = 64 << 10

// Config tunes a Service. The session.Config knobs keep their
// meanings; the serving additions are MemBudget (now a global pool
// shared by in-flight queries rather than one stream's budget),
// MaxQueued, and the plan-cache controls.
type Config struct {
	Model        cluster.CostModel
	Optimizer    optimizer.Config // template for per-tenant optimizers
	BudgetBlocks int
	ForceShuffle bool
	Workers      int
	// MemBudget bounds the sum of in-flight queries' estimated
	// footprints (0 = unlimited, admission passes everything). Each
	// admitted query gets a private exec.MemBudget sized to its
	// reservation, so a query that outgrows its share spills rather
	// than stealing from its neighbors.
	MemBudget int64
	SpillDir  string
	// MaxQueued bounds the admission queue (0 = unbounded); beyond it
	// queries are rejected with ErrQueueFull instead of waiting.
	MaxQueued      int
	Distributed    bool
	WorkersPerNode int
	// PlanCacheSize bounds the shared plan cache (0 = default);
	// DisablePlanCache turns caching off entirely.
	PlanCacheSize    int
	DisablePlanCache bool
}

// Service is the long-lived query service. Safe for concurrent use by
// any number of goroutines.
type Service struct {
	store *dfs.Store
	cfg   Config
	model cluster.CostModel
	base  *exec.Executor // template: flags only, never executes
	adm   *Admission
	cache *planner.PlanCache

	// layoutMu serializes adaptation (write) against compile+execute
	// (read): core.Table is unsynchronized, so block migration must
	// never overlap a scan.
	layoutMu sync.RWMutex

	// epochMu guards epochs; bumps happen while layoutMu is held for
	// writing, reads happen under the read lock from many queries.
	epochMu sync.Mutex
	epochs  map[string]uint64

	tenantMu sync.Mutex
	tenants  map[string]*tenant

	seq atomic.Int64
}

// tenant is one client stream's adaptation state. Its mutex serializes
// the tenant's own adaptation steps; cross-tenant serialization is
// layoutMu's job.
type tenant struct {
	mu  sync.Mutex
	opt *optimizer.Optimizer
}

// New builds a service over a loaded store.
func New(store *dfs.Store, cfg Config) *Service {
	model := cfg.Model
	if model == (cluster.CostModel{}) {
		model = cluster.Default()
	}
	base := exec.New(store, &cluster.Meter{})
	base.Workers = cfg.Workers
	base.SpillDir = cfg.SpillDir
	var cache *planner.PlanCache
	if !cfg.DisablePlanCache {
		cache = planner.NewPlanCache(cfg.PlanCacheSize)
	}
	return &Service{
		store:   store,
		cfg:     cfg,
		model:   model,
		base:    base,
		adm:     NewAdmission(exec.NewMemBudget(cfg.MemBudget), cfg.MaxQueued),
		cache:   cache,
		epochs:  make(map[string]uint64),
		tenants: make(map[string]*tenant),
	}
}

// Result reports what one query did — session.Result's fields plus the
// serving-layer observability: the result checksum, cache behavior,
// and admission accounting.
type Result struct {
	Seq    int64
	Tenant string
	Label  string
	// Rows holds the materialized result (Execute only; nil for Stream).
	Rows     []tuple.Tuple
	RowCount int
	// Checksum is an order-independent digest of the result multiset
	// (commutative sum of per-row FNV-1a over the binary encoding);
	// equal multisets yield equal checksums regardless of row order, so
	// concurrent and serial replays compare directly.
	Checksum uint64
	Report   *planner.Report
	Adapt    optimizer.StepReport
	Counters cluster.Counters
	// SimSeconds prices Counters with the service's cost model.
	SimSeconds float64
	Wall       time.Duration
	// Queued is the time spent waiting for admission.
	Queued time.Duration
	// EstBytes is the planner-estimated footprint the query reserved.
	EstBytes int64
	// CacheHits/CacheMisses are this query's plan-cache lookups (one
	// per base-table join in the plan).
	CacheHits, CacheMisses int
}

// Execute runs one query for a tenant — admit, adapt, compile, drain —
// materializing the result rows. ctx cancels or deadlines the whole
// path, including the admission wait.
func (s *Service) Execute(ctx context.Context, tenantID string, q session.Query) (*Result, error) {
	return s.run(ctx, tenantID, q, true, nil)
}

// Stream runs one query without materializing the result; each output
// batch is passed to sink (nil = just count and checksum). The batch
// is only valid during the call.
func (s *Service) Stream(ctx context.Context, tenantID string, q session.Query, sink func(*exec.Batch) error) (*Result, error) {
	return s.run(ctx, tenantID, q, false, sink)
}

func (s *Service) run(ctx context.Context, tenantID string, q session.Query, collect bool, sink func(*exec.Batch) error) (*Result, error) {
	res := &Result{Seq: s.seq.Add(1) - 1, Tenant: tenantID, Label: q.Label}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	// Reserve the planner-estimated footprint before anything runs.
	// The estimate reads zone maps, so it needs a stable layout.
	s.layoutMu.RLock()
	var est int64
	if q.Spec != nil {
		est = s.footprintSpec(q.Spec)
	} else {
		est = s.footprint(q.Plan)
	}
	s.layoutMu.RUnlock()
	res.EstBytes = est
	qstart := time.Now()
	if err := s.adm.Acquire(ctx, est); err != nil {
		res.Queued = time.Since(qstart)
		return res, err
	}
	res.Queued = time.Since(qstart)
	defer s.adm.Release(est)

	meter := &cluster.Meter{}
	defer func() {
		res.Counters = meter.Reset()
		res.SimSeconds = res.Counters.SimSeconds(s.model)
	}()

	// Adaptation: the tenant's own windows vote, and any layout change
	// happens under the write lock — no query is scanning while blocks
	// move. Epoch bumps piggyback on the same critical section, so a
	// reader either sees (old layout, old epoch) or (new, new).
	if len(q.Uses) > 0 {
		t := s.tenant(tenantID)
		t.mu.Lock()
		s.layoutMu.Lock()
		adapt, err := t.opt.OnQuery(q.Uses, meter)
		if err == nil && adapt.Adapted() {
			s.epochMu.Lock()
			for _, u := range q.Uses {
				s.epochs[u.Table.Name]++
			}
			s.epochMu.Unlock()
		}
		s.layoutMu.Unlock()
		t.mu.Unlock()
		if err != nil {
			return res, err
		}
		res.Adapt = adapt
	}

	// Compile and drain under the read lock: the layout (and with it
	// every epoch this compile keys cache entries on) cannot change
	// until the query finishes.
	s.layoutMu.RLock()
	defer s.layoutMu.RUnlock()

	qex := s.base.ForQuery(exec.QueryCtx{
		Ctx:            ctx,
		Meter:          meter,
		Mem:            s.queryBudget(est),
		Workers:        s.cfg.Workers,
		Distributed:    s.cfg.Distributed,
		WorkersPerNode: s.cfg.WorkersPerNode,
	})
	if ns := qex.Nodes(); ns != nil {
		// The query's NodeSet is private, so flushing its shards into
		// the query meter never races another query's accounting.
		defer ns.Flush()
	}
	runner := planner.NewRunner(qex, s.model)
	if s.cfg.BudgetBlocks > 0 {
		runner.BudgetBlocks = s.cfg.BudgetBlocks
	}
	runner.ForceShuffle = s.cfg.ForceShuffle
	runner.Cache = s.cache
	runner.Epoch = s.Epoch
	var comp *planner.Compiled
	var err error
	if q.Spec != nil {
		comp, err = runner.CompileSpec(q.Spec)
	} else {
		comp, err = runner.Compile(q.Plan)
	}
	res.CacheHits, res.CacheMisses = runner.CacheHits, runner.CacheMisses
	if err != nil {
		return res, err
	}
	res.Report = comp.Report

	sum := uint64(0)
	var scratch []byte
	wrapped := func(b *exec.Batch) error {
		for _, r := range b.Rows() {
			scratch = r.AppendBinary(scratch[:0])
			sum += fnv1a(scratch)
		}
		if collect {
			if b.OwnsRows() {
				// Owned rows die with the batch arena at Release — copy.
				for _, r := range b.Rows() {
					res.Rows = append(res.Rows, append(tuple.Tuple(nil), r...))
				}
			} else {
				// View rows alias storage that outlives the batch; copying
				// them again would double every materialized scan result.
				res.Rows = append(res.Rows, b.Rows()...)
			}
		}
		if sink != nil {
			return sink(b)
		}
		return nil
	}
	n, err := drain(ctx, comp.Root, wrapped)
	res.RowCount = n
	res.Checksum = sum
	if err != nil {
		return res, err
	}
	return res, nil
}

// footprint estimates a plan's peak memory via a throwaway runner over
// the template executor (EstimateFootprint only reads zone maps).
func (s *Service) footprint(n planner.Node) int64 {
	r := planner.NewRunner(s.base, s.model)
	return floorReserve(r.EstimateFootprint(n))
}

// footprintSpec is footprint for the declarative form: the throwaway
// runner orders the spec the same way the compile will (same knobs)
// and prices the resulting tree.
func (s *Service) footprintSpec(b *query.Bound) int64 {
	r := planner.NewRunner(s.base, s.model)
	if s.cfg.BudgetBlocks > 0 {
		r.BudgetBlocks = s.cfg.BudgetBlocks
	}
	r.ForceShuffle = s.cfg.ForceShuffle
	return floorReserve(r.EstimateSpecFootprint(b))
}

func floorReserve(est int64) int64 {
	if est < minReserve {
		return minReserve
	}
	return est
}

// queryBudget sizes a query's private memory budget to its admission
// reservation — the "share" of the global pool it was admitted under.
// An unbudgeted service runs queries unlimited.
func (s *Service) queryBudget(est int64) *exec.MemBudget {
	if s.cfg.MemBudget <= 0 {
		return nil
	}
	return exec.NewMemBudget(est)
}

// Epoch reports a table's partitioning epoch — the planner cache's
// invalidation hook.
func (s *Service) Epoch(table string) uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epochs[table]
}

// tenant returns (creating on first use) a tenant's adaptation state.
// Each tenant's optimizer gets a seed derived from the service seed
// and the tenant's name, so per-tenant adaptation replays
// deterministically regardless of arrival interleaving.
func (s *Service) tenant(id string) *tenant {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	t, ok := s.tenants[id]
	if !ok {
		cfg := s.cfg.Optimizer
		h := fnv.New64a()
		h.Write([]byte(id))
		cfg.Seed += int64(h.Sum64() % (1 << 32))
		t = &tenant{opt: optimizer.New(cfg)}
		s.tenants[id] = t
	}
	return t
}

// TenantOptimizer exposes a tenant's optimizer (its workload windows
// and smooth managers) for inspection and tests; creates the tenant if
// it doesn't exist yet.
func (s *Service) TenantOptimizer(id string) *optimizer.Optimizer {
	return s.tenant(id).opt
}

// Admission exposes the service's admission controller.
func (s *Service) Admission() *Admission { return s.adm }

// CacheStats reports the shared plan cache's lifetime hit/miss counts
// (zeros when caching is disabled).
func (s *Service) CacheStats() (hits, misses int64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// Store exposes the served store.
func (s *Service) Store() *dfs.Store { return s.store }

// drain pulls a DAG to exhaustion, forwarding batches to sink. The
// context is checked at every batch boundary — the serving-layer end
// of the cancellation thread: even when the operators have already
// buffered the remaining output (so no worker observes ctx), a
// cancelled query stops delivering and errors promptly.
func drain(ctx context.Context, op exec.Operator, sink func(*exec.Batch) error) (int, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	n := 0
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		b, err := op.Next()
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += b.Len()
		if sink != nil {
			if err := sink(b); err != nil {
				b.Release()
				return n, err
			}
		}
		b.Release()
	}
}

// fnv1a is the 64-bit FNV-1a of buf — the per-row term of the
// order-independent result checksum.
func fnv1a(buf []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range buf {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
