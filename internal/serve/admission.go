// Admission control: one global exec.MemBudget shared by every
// in-flight query. A query reserves its planner-estimated footprint
// before it runs; when the reservation doesn't fit, the query queues
// (strict FIFO — a release wakes waiters in arrival order and never
// skips a too-big head, so large queries cannot starve) or is shed
// outright when it could never fit. The reservation comes back on
// Release, waking whoever fits next.
//
// The controller is the budget's only writer: queries run against
// their own per-query MemBudget sized to the reservation, so the
// global ledger tracks reservations, not live operator bytes, and
// check-then-charge under the controller's mutex is race-free.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"adaptdb/internal/exec"
)

// ErrShed marks a query rejected because its footprint exceeds the
// service's total memory capacity — no amount of queueing would admit
// it. errors.Is(err, ErrShed) identifies the path.
var ErrShed = fmt.Errorf("serve: query footprint exceeds memory capacity")

// ErrQueueFull marks a query rejected because the admission queue is
// at its bound.
var ErrQueueFull = fmt.Errorf("serve: admission queue full")

// Admission serializes entry to the shared memory budget.
type Admission struct {
	mem      *exec.MemBudget // nil = unlimited: every Acquire passes
	maxQueue int             // 0 = unbounded queue

	mu      sync.Mutex
	waiters []*waiter // FIFO; head admitted first

	admitted atomic.Int64 // queries granted (with or without waiting)
	queued   atomic.Int64 // queries that had to wait before admission
	shed     atomic.Int64 // ErrShed rejections
	rejected atomic.Int64 // ErrQueueFull rejections
	expired  atomic.Int64 // waiters cancelled by their context
}

type waiter struct {
	bytes    int64
	ready    chan struct{}
	admitted bool // guarded by Admission.mu
}

// NewAdmission builds a controller over the service's global budget.
// A nil budget (unlimited memory) admits everything immediately.
func NewAdmission(mem *exec.MemBudget, maxQueue int) *Admission {
	return &Admission{mem: mem, maxQueue: maxQueue}
}

// AdmissionStats is a snapshot of the controller's lifetime counters.
type AdmissionStats struct {
	Admitted, Queued, Shed, Rejected, Expired int64
	// Reserved/Capacity mirror the budget ledger at snapshot time.
	Reserved, Capacity int64
	// Waiting is the current queue depth.
	Waiting int
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	s := AdmissionStats{
		Admitted: a.admitted.Load(),
		Queued:   a.queued.Load(),
		Shed:     a.shed.Load(),
		Rejected: a.rejected.Load(),
		Expired:  a.expired.Load(),
		Reserved: a.mem.Used(),
		Capacity: a.mem.Limit(),
	}
	a.mu.Lock()
	s.Waiting = len(a.waiters)
	a.mu.Unlock()
	return s
}

// Reserved returns the bytes currently reserved by admitted queries.
func (a *Admission) Reserved() int64 { return a.mem.Used() }

// Acquire reserves bytes from the shared budget, blocking in FIFO
// order behind earlier waiters when the reservation doesn't fit.
// Returns ErrShed (wrapped) when bytes exceeds total capacity,
// ErrQueueFull (wrapped) when the queue is at its bound, or ctx.Err()
// when the context ends first — in every error case the budget is
// untouched. A nil ctx means wait forever.
func (a *Admission) Acquire(ctx context.Context, bytes int64) error {
	if a.mem == nil {
		a.admitted.Add(1)
		return nil
	}
	if bytes < 0 {
		bytes = 0
	}
	limit := a.mem.Limit()
	if bytes > limit {
		a.shed.Add(1)
		return fmt.Errorf("%w: need %d bytes, capacity %d", ErrShed, bytes, limit)
	}
	a.mu.Lock()
	// Fast path: nothing queued ahead and the reservation fits. The
	// queue-empty condition preserves FIFO — a newcomer never jumps a
	// waiter, even one it would fit beside.
	if len(a.waiters) == 0 && a.mem.Used()+bytes <= limit {
		a.mem.Charge(bytes)
		a.mu.Unlock()
		a.admitted.Add(1)
		return nil
	}
	if a.maxQueue > 0 && len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		a.rejected.Add(1)
		return fmt.Errorf("%w: %d queries waiting", ErrQueueFull, a.maxQueue)
	}
	w := &waiter{bytes: bytes, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()
	a.queued.Add(1)

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		a.admitted.Add(1)
		return nil
	case <-done:
		a.mu.Lock()
		if w.admitted {
			// A release admitted us in the same instant the context
			// expired. Hand the grant straight back and wake the next
			// fit, leaving the budget exactly as if we never arrived.
			a.mem.Release(bytes)
			a.wakeLocked()
			a.mu.Unlock()
			a.expired.Add(1)
			return ctx.Err()
		}
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		// Removing a waiter can unblock the queue: if we were the
		// too-big head, a smaller successor may fit right now.
		a.wakeLocked()
		a.mu.Unlock()
		a.expired.Add(1)
		return ctx.Err()
	}
}

// Release returns a reservation to the budget and wakes queued
// waiters, in order, as long as they fit.
func (a *Admission) Release(bytes int64) {
	if a.mem == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	a.mu.Lock()
	a.mem.Release(bytes)
	a.wakeLocked()
	a.mu.Unlock()
}

// wakeLocked admits waiters from the head while they fit. Strict FIFO:
// a head that doesn't fit blocks everyone behind it — the price of
// starvation-freedom for large queries.
func (a *Admission) wakeLocked() {
	limit := a.mem.Limit()
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.mem.Used()+w.bytes > limit {
			return
		}
		a.waiters = a.waiters[1:]
		a.mem.Charge(w.bytes)
		w.admitted = true
		close(w.ready)
	}
}
