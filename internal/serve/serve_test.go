package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adaptdb/internal/core"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/predicate"
	"adaptdb/internal/schema"
	"adaptdb/internal/session"
	"adaptdb/internal/tuple"
	"adaptdb/internal/value"
)

var (
	factSch = schema.MustNew(
		schema.Column{Name: "a", Kind: value.Int},
		schema.Column{Name: "b", Kind: value.Int},
		schema.Column{Name: "v", Kind: value.Int},
	)
	dimSch = schema.MustNew(
		schema.Column{Name: "key", Kind: value.Int},
		schema.Column{Name: "payload", Kind: value.Int},
	)
)

type fixture struct {
	store        *dfs.Store
	fact, da, db *core.Table
}

// buildFixture loads a fresh store with the fact/dim trio. Fully
// deterministic: two calls produce bit-identical layouts, so a serial
// and a concurrent service can be compared query-by-query.
func buildFixture(t *testing.T) *fixture {
	t.Helper()
	store := dfs.NewStore(4, 2, 5)
	rng := rand.New(rand.NewSource(17))
	var frows, darows, dbrows []tuple.Tuple
	for i := 0; i < 4096; i++ {
		frows = append(frows, tuple.Tuple{
			value.NewInt(rng.Int63n(200)),
			value.NewInt(rng.Int63n(50)),
			value.NewInt(rng.Int63n(1000)),
		})
	}
	for i := int64(0); i < 200; i++ {
		darows = append(darows, tuple.Tuple{value.NewInt(i), value.NewInt(i * 7)})
	}
	for i := int64(0); i < 50; i++ {
		dbrows = append(dbrows, tuple.Tuple{value.NewInt(i), value.NewInt(i * 11)})
	}
	f := &fixture{store: store}
	var err error
	if f.fact, err = core.Load(store, "fact", factSch, frows, core.LoadOptions{
		RowsPerBlock: 128, Seed: 2, JoinAttr: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if f.da, err = core.Load(store, "dim_a", dimSch, darows, core.LoadOptions{
		RowsPerBlock: 32, Seed: 3, JoinAttr: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if f.db, err = core.Load(store, "dim_b", dimSch, dbrows, core.LoadOptions{
		RowsPerBlock: 16, Seed: 4, JoinAttr: 0,
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

// query builds a fact ⋈ dim query on the given fact column with a
// selection on fact.v, with window-feeding Uses.
func (f *fixture) query(attr int, vmax int64) session.Query {
	dim := f.da
	if attr == 1 {
		dim = f.db
	}
	preds := []predicate.Predicate{predicate.NewCmp(2, predicate.LT, value.NewInt(vmax))}
	return session.Query{
		Label: fmt.Sprintf("fact-dim@%d<%d", attr, vmax),
		Plan: &planner.Join{
			Left:  &planner.Scan{Table: f.fact, Preds: preds},
			Right: &planner.Scan{Table: dim},
			LCol:  attr, RCol: 0,
		},
		Uses: []optimizer.TableUse{
			{Table: f.fact, JoinAttr: attr, Preds: preds},
			{Table: dim, JoinAttr: 0},
		},
	}
}

// noAdapt strips Uses so the query doesn't feed windows or trigger
// repartitioning — for tests that need a stable epoch.
func noAdapt(q session.Query) session.Query {
	q.Uses = nil
	return q
}

func testConfig() Config {
	return Config{
		Optimizer: optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 4, Seed: 7},
		MemBudget: 32 << 20,
	}
}

// schedule is the serve test stream: an attr-0 phase then an attr-1
// phase (the join-attribute shift), with the selection varying so plan
// keys repeat only within a (attr, vmax) class.
func schedule(n int) []struct {
	attr int
	vmax int64
} {
	out := make([]struct {
		attr int
		vmax int64
	}, n)
	for i := range out {
		attr := 0
		if i >= n/2 {
			attr = 1
		}
		out[i] = struct {
			attr int
			vmax int64
		}{attr, int64(200 + 200*(i%3))}
	}
	return out
}

// TestServeConcurrentMatchesSerial is the package-level differential
// gate: T tenants × Q queries through one Service, concurrent, must
// checksum-match the identical streams replayed serially on a freshly
// built twin service. Run with -race.
func TestServeConcurrentMatchesSerial(t *testing.T) {
	const tenants, perTenant = 4, 12
	sched := schedule(perTenant)

	type key struct{ tenant, qi int }
	type digest struct {
		sum  uint64
		rows int
	}

	// Serial oracle on its own twin store.
	serial := make(map[key]digest)
	{
		f := buildFixture(t)
		svc := New(f.store, testConfig())
		for qi, s := range sched {
			for c := 0; c < tenants; c++ {
				res, err := svc.Stream(context.Background(), fmt.Sprintf("t%d", c), f.query(s.attr, s.vmax), nil)
				if err != nil {
					t.Fatalf("serial t%d q%d: %v", c, qi, err)
				}
				serial[key{c, qi}] = digest{res.Checksum, res.RowCount}
			}
		}
		if got := svc.Admission().Reserved(); got != 0 {
			t.Fatalf("serial service reserved %d bytes at rest, want 0", got)
		}
	}

	f := buildFixture(t)
	svc := New(f.store, testConfig())
	var (
		mu         sync.Mutex
		concurrent = make(map[key]digest)
		wg         sync.WaitGroup
	)
	for c := 0; c < tenants; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for qi, s := range sched {
				res, err := svc.Stream(context.Background(), fmt.Sprintf("t%d", c), f.query(s.attr, s.vmax), nil)
				if err != nil {
					t.Errorf("concurrent t%d q%d: %v", c, qi, err)
					return
				}
				mu.Lock()
				concurrent[key{c, qi}] = digest{res.Checksum, res.RowCount}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k, want := range serial {
		if got := concurrent[k]; got != want {
			t.Errorf("tenant %d query %d: concurrent %016x/%d rows, serial %016x/%d rows",
				k.tenant, k.qi, got.sum, got.rows, want.sum, want.rows)
		}
	}
	// All reservations must have been returned.
	if got := svc.Admission().Reserved(); got != 0 {
		t.Fatalf("concurrent service reserved %d bytes at rest, want 0", got)
	}
}

// TestServeExecuteMatchesStream: the two drain paths agree on rows,
// count, and checksum.
func TestServeExecuteMatchesStream(t *testing.T) {
	f := buildFixture(t)
	svc := New(f.store, testConfig())
	q := noAdapt(f.query(0, 400))
	ex, err := svc.Execute(context.Background(), "t0", q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Stream(context.Background(), "t0", q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ex.RowCount != st.RowCount || ex.Checksum != st.Checksum {
		t.Fatalf("Execute %d rows %016x vs Stream %d rows %016x",
			ex.RowCount, ex.Checksum, st.RowCount, st.Checksum)
	}
	if len(ex.Rows) != ex.RowCount {
		t.Fatalf("Execute materialized %d rows, RowCount %d", len(ex.Rows), ex.RowCount)
	}
	if st.Rows != nil {
		t.Fatal("Stream materialized rows")
	}
}

// TestServePlanCacheHitRepeatMissOnBump: a repeated (tables, attrs,
// predicates, epoch) compile hits the cache; an adaptation that bumps
// the epoch makes the next compile miss and re-prices.
func TestServePlanCacheHitRepeatMissOnBump(t *testing.T) {
	f := buildFixture(t)
	svc := New(f.store, testConfig())
	q := noAdapt(f.query(0, 400))

	first, err := svc.Execute(context.Background(), "t0", q)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses == 0 || first.CacheHits != 0 {
		t.Fatalf("first compile: %d hits / %d misses, want cold misses only",
			first.CacheHits, first.CacheMisses)
	}
	second, err := svc.Execute(context.Background(), "t0", q)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 || second.CacheHits != first.CacheMisses {
		t.Fatalf("repeat compile: %d hits / %d misses, want %d hits / 0 misses",
			second.CacheHits, second.CacheMisses, first.CacheMisses)
	}
	if second.Checksum != first.Checksum || second.RowCount != first.RowCount {
		t.Fatalf("cached plan drifted: %016x/%d vs %016x/%d",
			second.Checksum, second.RowCount, first.Checksum, first.RowCount)
	}

	// Drive adaptation until an epoch bump lands on the fact table. The
	// driver uses a different predicate class (vmax 600) so its own
	// compiles never repopulate q's key at the new epoch — the post-bump
	// lookup below must be a genuine cold miss.
	epoch0 := svc.Epoch("fact")
	for i := 0; i < 32 && svc.Epoch("fact") == epoch0; i++ {
		if _, err := svc.Execute(context.Background(), "t0", f.query(0, 600)); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Epoch("fact") == epoch0 {
		t.Fatal("adaptive stream never bumped the fact epoch")
	}

	third, err := svc.Execute(context.Background(), "t0", q)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheMisses == 0 {
		t.Fatalf("post-bump compile: %d hits / %d misses, want fresh misses (stale key must be unreachable)",
			third.CacheHits, third.CacheMisses)
	}
	// Same data, new layout: the answer must not change.
	if third.Checksum != first.Checksum || third.RowCount != first.RowCount {
		t.Fatalf("post-bump result drifted: %016x/%d vs %016x/%d",
			third.Checksum, third.RowCount, first.Checksum, first.RowCount)
	}
}

// TestServeCacheNeverStale is the cached-vs-fresh oracle: the same
// adaptive stream on twin services — one caching, one compiling fresh
// every time — must produce identical per-query results. Any stale
// fragment served past an epoch bump diverges here.
func TestServeCacheNeverStale(t *testing.T) {
	sched := schedule(16)
	run := func(disable bool) []uint64 {
		f := buildFixture(t)
		cfg := testConfig()
		cfg.DisablePlanCache = disable
		svc := New(f.store, cfg)
		var sums []uint64
		for qi, s := range sched {
			res, err := svc.Stream(context.Background(), "t0", f.query(s.attr, s.vmax), nil)
			if err != nil {
				t.Fatalf("disable=%v q%d: %v", disable, qi, err)
			}
			sums = append(sums, res.Checksum)
		}
		if !disable {
			if hits, _ := svc.CacheStats(); hits == 0 {
				t.Fatal("caching run never hit the cache — oracle compares nothing")
			}
		}
		return sums
	}
	cached, fresh := run(false), run(true)
	for i := range cached {
		if cached[i] != fresh[i] {
			t.Errorf("query %d: cached %016x, fresh %016x", i, cached[i], fresh[i])
		}
	}
}

// TestServeCancellation: a cancelled context fails the query with
// ctx.Err() and every reservation comes back.
func TestServeCancellation(t *testing.T) {
	f := buildFixture(t)
	svc := New(f.store, testConfig())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := svc.Execute(ctx, "t0", noAdapt(f.query(0, 1000)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query error = %v, want context.Canceled", err)
	}
	if got := svc.Admission().Reserved(); got != 0 {
		t.Fatalf("reserved after cancelled query = %d, want 0", got)
	}

	// Cancel mid-stream: the sink pulls the trigger after the first
	// batch, the drain loop must stop with ctx.Err().
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	batches := 0
	_, err = svc.Stream(ctx, "t0", noAdapt(f.query(0, 1000)), func(*exec.Batch) error {
		batches++
		if batches == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel error = %v, want context.Canceled", err)
	}
	if got := svc.Admission().Reserved(); got != 0 {
		t.Fatalf("reserved after mid-stream cancel = %d, want 0", got)
	}

	// The service stays healthy: the same query runs to completion.
	if _, err := svc.Execute(context.Background(), "t0", noAdapt(f.query(0, 1000))); err != nil {
		t.Fatalf("query after cancellations: %v", err)
	}
}

// TestServeDeadline: an already-expired deadline errors with
// DeadlineExceeded before any work runs.
func TestServeDeadline(t *testing.T) {
	f := buildFixture(t)
	svc := New(f.store, testConfig())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := svc.Execute(ctx, "t0", noAdapt(f.query(0, 1000)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline query error = %v, want DeadlineExceeded", err)
	}
	if got := svc.Admission().Reserved(); got != 0 {
		t.Fatalf("reserved after deadline = %d, want 0", got)
	}
}

// TestServeTenantWindowIsolation: each tenant's workload windows see
// only that tenant's queries — tenant B's stream never dilutes tenant
// A's vote.
func TestServeTenantWindowIsolation(t *testing.T) {
	f := buildFixture(t)
	svc := New(f.store, testConfig())
	for i := 0; i < 3; i++ {
		if _, err := svc.Stream(context.Background(), "alice", f.query(0, 400), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Stream(context.Background(), "bob", f.query(1, 400), nil); err != nil {
		t.Fatal(err)
	}
	aw := svc.TenantOptimizer("alice").Window("fact").Queries()
	bw := svc.TenantOptimizer("bob").Window("fact").Queries()
	if len(aw) != 3 || len(bw) != 1 {
		t.Fatalf("window sizes alice=%d bob=%d, want 3 and 1", len(aw), len(bw))
	}
	for _, q := range aw {
		if q.JoinAttr != 0 {
			t.Fatalf("alice's window saw attr %d", q.JoinAttr)
		}
	}
	if bw[0].JoinAttr != 1 {
		t.Fatalf("bob's window saw attr %d, want 1", bw[0].JoinAttr)
	}
}

// TestServeShedOversizedQuery: with a budget smaller than the floor
// reservation, every query sheds with the typed error and nothing
// leaks.
func TestServeShedOversizedQuery(t *testing.T) {
	f := buildFixture(t)
	cfg := testConfig()
	cfg.MemBudget = minReserve - 1
	svc := New(f.store, cfg)
	_, err := svc.Execute(context.Background(), "t0", noAdapt(f.query(0, 400)))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("oversized query error = %v, want ErrShed", err)
	}
	if got := svc.Admission().Reserved(); got != 0 {
		t.Fatalf("reserved after shed = %d, want 0", got)
	}
}

// TestServeDistributedMatchesCentralized: the same stream through a
// distributed service (per-node executors + exchanges) checksums
// identically to the centralized twin.
func TestServeDistributedMatchesCentralized(t *testing.T) {
	sched := schedule(8)
	run := func(distributed bool) []uint64 {
		f := buildFixture(t)
		cfg := testConfig()
		cfg.Distributed = distributed
		cfg.WorkersPerNode = 2
		svc := New(f.store, cfg)
		var sums []uint64
		for qi, s := range sched {
			res, err := svc.Stream(context.Background(), "t0", f.query(s.attr, s.vmax), nil)
			if err != nil {
				t.Fatalf("distributed=%v q%d: %v", distributed, qi, err)
			}
			sums = append(sums, res.Checksum)
		}
		return sums
	}
	central, dist := run(false), run(true)
	for i := range central {
		if central[i] != dist[i] {
			t.Errorf("query %d: centralized %016x, distributed %016x", i, central[i], dist[i])
		}
	}
}
