package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adaptdb/internal/exec"
)

// waitReserved polls until the controller's reservation ledger reads
// want or the deadline passes.
func waitReserved(t *testing.T, a *Admission, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Reserved() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("reserved = %d, want %d", a.Reserved(), want)
}

// waitQueueDepth polls until the waiter queue reaches depth n.
func waitQueueDepth(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().Waiting == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth = %d, want %d", a.Stats().Waiting, n)
}

// TestAdmissionStarvedBudgetQueues is the over-admission guard: with
// the budget saturated, a second query must wait — the ledger never
// exceeds capacity — and must be admitted promptly once the holder
// releases.
func TestAdmissionStarvedBudgetQueues(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	if err := a.Acquire(context.Background(), 80); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- a.Acquire(context.Background(), 50) }()

	waitQueueDepth(t, a, 1)
	if got := a.Reserved(); got != 80 {
		t.Fatalf("budget over-admitted: reserved %d with capacity 100 and 80 held", got)
	}
	select {
	case err := <-admitted:
		t.Fatalf("second acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	a.Release(80)
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by release")
	}
	if got := a.Reserved(); got != 50 {
		t.Fatalf("reserved after handoff = %d, want 50", got)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.Queued != 1 {
		t.Fatalf("stats = %+v, want Admitted 2 Queued 1", st)
	}
	a.Release(50)
	waitReserved(t, a, 0)
}

// TestAdmissionFIFOWakeOrder: releases admit waiters strictly in
// arrival order. Sized so each release can admit exactly one waiter,
// making the grant order observable without racing on goroutine
// scheduling: any non-FIFO policy (LIFO, best-fit) would wake a
// different waiter.
func TestAdmissionFIFOWakeOrder(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	wake := make(chan int, 3)
	enqueue := func(id int, bytes int64) {
		go func() {
			if err := a.Acquire(context.Background(), bytes); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			wake <- id
		}()
		waitQueueDepth(t, a, id)
	}
	enqueue(1, 60)
	enqueue(2, 60)
	enqueue(3, 60)

	a.Release(100)
	for want := 1; want <= 3; want++ {
		select {
		case id := <-wake:
			if id != want {
				t.Fatalf("wake %d = waiter %d, want waiter %d (strict FIFO)", want, id, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d not woken", want)
		}
		// Only one 60-byte waiter fits at a time; the next is queued
		// until this one releases.
		if st := a.Stats(); st.Waiting != 3-want {
			t.Fatalf("queue depth after wake %d = %d, want %d", want, st.Waiting, 3-want)
		}
		a.Release(60)
	}
	waitReserved(t, a, 0)
}

// TestAdmissionHeadBlocksSmallerWaiter: strict FIFO means a too-big
// head is never skipped — a later waiter that would fit right now
// still waits behind it (the price of starvation-freedom for large
// queries).
func TestAdmissionHeadBlocksSmallerWaiter(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	if err := a.Acquire(context.Background(), 50); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	wake := make(chan int, 2)
	enqueue := func(id int, bytes int64, depth int) {
		go func() {
			if err := a.Acquire(context.Background(), bytes); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			wake <- id
		}()
		waitQueueDepth(t, a, depth)
	}
	// Head wants 90 (doesn't fit beside 50); waiter 2 wants 10 and
	// would fit immediately — FIFO must hold it behind the head.
	enqueue(1, 90, 1)
	enqueue(2, 10, 2)
	select {
	case id := <-wake:
		t.Fatalf("waiter %d admitted past a blocked head", id)
	case <-time.After(30 * time.Millisecond):
	}
	if got := a.Reserved(); got != 50 {
		t.Fatalf("reserved = %d, want 50 (nothing admitted)", got)
	}

	a.Release(50)
	// Now the head fits (90), and behind it waiter 2 (90+10 = 100).
	// Both are granted; grant order is FIFO by construction, collect
	// both wakes without asserting goroutine scheduling order.
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		select {
		case id := <-wake:
			got[id] = true
		case <-time.After(2 * time.Second):
			t.Fatal("waiters not woken after release")
		}
	}
	if !got[1] || !got[2] {
		t.Fatalf("woken set = %v, want both waiters", got)
	}
	a.Release(90)
	a.Release(10)
	waitReserved(t, a, 0)
}

// TestAdmissionDeadlineExpiredWaiter: a waiter whose context deadlines
// while queued gets ctx.Err() back and the budget ledger is untouched
// — the reservation it never received is not leaked.
func TestAdmissionDeadlineExpiredWaiter(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := a.Acquire(ctx, 40)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter error = %v, want DeadlineExceeded", err)
	}
	if got := a.Reserved(); got != 100 {
		t.Fatalf("reserved after expiry = %d, want 100 (budget untouched)", got)
	}
	st := a.Stats()
	if st.Expired != 1 || st.Waiting != 0 {
		t.Fatalf("stats = %+v, want Expired 1 Waiting 0", st)
	}
	// The service must be fully healthy afterwards.
	a.Release(100)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("acquire after expiry cycle: %v", err)
	}
	a.Release(100)
	waitReserved(t, a, 0)
}

// TestAdmissionExpiredHeadUnblocksQueue: removing an expired too-big
// head must re-run the wake scan so a smaller successor that now fits
// is admitted — otherwise the queue deadlocks until the next release.
func TestAdmissionExpiredHeadUnblocksQueue(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	if err := a.Acquire(context.Background(), 60); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	// Head wants 90 (doesn't fit beside 60); successor wants 30 (fits
	// right now but FIFO holds it behind the head).
	ctx, cancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() { headErr <- a.Acquire(ctx, 90) }()
	waitQueueDepth(t, a, 1)
	okErr := make(chan error, 1)
	go func() { okErr <- a.Acquire(context.Background(), 30) }()
	waitQueueDepth(t, a, 2)

	cancel()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head error = %v, want Canceled", err)
	}
	select {
	case err := <-okErr:
		if err != nil {
			t.Fatalf("successor acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("successor not admitted after too-big head expired")
	}
	if got := a.Reserved(); got != 90 {
		t.Fatalf("reserved = %d, want 90 (60 held + 30 admitted)", got)
	}
	a.Release(60)
	a.Release(30)
	waitReserved(t, a, 0)
}

// TestAdmissionShed: a footprint beyond total capacity is rejected
// with the typed ErrShed, immediately and without touching the budget.
func TestAdmissionShed(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 0)
	err := a.Acquire(context.Background(), 101)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("oversized acquire error = %v, want ErrShed", err)
	}
	if got := a.Reserved(); got != 0 {
		t.Fatalf("reserved after shed = %d, want 0", got)
	}
	if st := a.Stats(); st.Shed != 1 || st.Admitted != 0 {
		t.Fatalf("stats = %+v, want Shed 1 Admitted 0", st)
	}
	// Exactly at capacity is admitted, not shed.
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("at-capacity acquire: %v", err)
	}
	a.Release(100)
}

// TestAdmissionQueueFull: beyond MaxQueued, acquires surface the typed
// ErrQueueFull instead of waiting.
func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(100), 1)
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan error, 1)
	go func() { waiting <- a.Acquire(ctx, 10) }()
	waitQueueDepth(t, a, 1)

	err := a.Acquire(context.Background(), 10)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-queue acquire error = %v, want ErrQueueFull", err)
	}
	if st := a.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Rejected 1", st)
	}
	cancel()
	<-waiting
	a.Release(100)
	waitReserved(t, a, 0)
}

// TestAdmissionNilBudget: an unlimited service admits everything
// without queueing.
func TestAdmissionNilBudget(t *testing.T) {
	a := NewAdmission(nil, 0)
	for i := 0; i < 8; i++ {
		if err := a.Acquire(context.Background(), 1<<40); err != nil {
			t.Fatalf("unlimited acquire %d: %v", i, err)
		}
	}
	if st := a.Stats(); st.Admitted != 8 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want Admitted 8 Queued 0", st)
	}
	a.Release(1 << 40) // no-op, must not panic
}

// TestAdmissionConcurrentChurn hammers the controller from many
// goroutines and checks the ledger invariant (never over capacity,
// zero at rest) plus full accounting. Run with -race.
func TestAdmissionConcurrentChurn(t *testing.T) {
	const (
		capacity = 1000
		workers  = 16
		rounds   = 50
	)
	a := NewAdmission(exec.NewMemBudget(capacity), 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				bytes := int64(100 + (w*rounds+i)%300)
				if err := a.Acquire(context.Background(), bytes); err != nil {
					t.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
				if got := a.Reserved(); got > capacity {
					t.Errorf("ledger over capacity: %d > %d", got, capacity)
				}
				a.Release(bytes)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Reserved(); got != 0 {
		t.Fatalf("reserved at rest = %d, want 0", got)
	}
	if st := a.Stats(); st.Admitted != workers*rounds {
		t.Fatalf("admitted = %d, want %d", st.Admitted, workers*rounds)
	}
}

// TestAdmissionStatsString is a tiny smoke for the snapshot fields.
func TestAdmissionStatsSnapshot(t *testing.T) {
	a := NewAdmission(exec.NewMemBudget(256), 4)
	if err := a.Acquire(context.Background(), 200); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Capacity != 256 || st.Reserved != 200 {
		t.Fatalf("snapshot = %+v, want Capacity 256 Reserved 200", st)
	}
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Fatal("unprintable stats")
	}
	a.Release(200)
}
