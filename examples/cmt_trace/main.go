// This example replays the CMT production trace (§7.6): 103 exploratory
// queries from data scientists over a telematics dataset — trip lookups,
// trip ⋈ history joins and a batch of large scans — comparing AdaptDB
// against the full-scan baseline, and showing the adaptation finishing
// within the first handful of queries.
package main

import (
	"fmt"

	"adaptdb/internal/cluster"
	"adaptdb/internal/cmt"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
)

func main() {
	const trips = 3000
	model := cluster.Default()
	data := cmt.Generate(trips, 11)
	trace := cmt.Trace(data, 12)
	fmt.Printf("CMT dataset: %d trips (%d cols), %d history rows, %d latest rows; %d-query trace\n\n",
		len(data.Trips), cmt.TripCols, len(data.History), len(data.Latest), len(trace))

	run := func(name string, mode optimizer.Mode, noPrune, forceShuffle bool) []float64 {
		store := dfs.NewStore(model.Nodes, 2, 11)
		tb, err := cmt.LoadAll(store, data, cmt.LoadConfig{RowsPerBlock: 512, Seed: 11})
		check(err)
		opt := optimizer.New(optimizer.Config{Mode: mode, WindowSize: 10, Seed: 11})
		meter := &cluster.Meter{}
		ex := exec.New(store, meter)
		ex.NoPrune = noPrune
		runner := planner.NewRunner(ex, model)
		runner.BudgetBlocks = 8
		runner.ForceShuffle = forceShuffle
		var out []float64
		for i := range trace {
			q := trace[i]
			_, err := opt.OnQuery(q.Uses(tb), meter)
			check(err)
			_, _, err = runner.Run(q.Plan(tb))
			check(err)
			out = append(out, meter.Reset().SimSeconds(model))
		}
		// Report the converged layout.
		if mode == optimizer.ModeAdaptive {
			st := tb.Trips
			fmt.Printf("%s converged trips layout: ", name)
			for _, ti := range st.LiveTrees() {
				attr := "selection-only"
				if st.Trees[ti].Tree.JoinAttr >= 0 {
					attr = st.Schema.Name(st.Trees[ti].Tree.JoinAttr)
				}
				fmt.Printf("[%s: %d rows] ", attr, st.Trees[ti].Rows())
			}
			fmt.Println()
		}
		return out
	}

	adaptive := run("AdaptDB", optimizer.ModeAdaptive, false, false)
	fullScan := run("FullScan", optimizer.ModeStatic, true, true)

	fmt.Println("\nper-query sim-seconds (every 10th query):")
	fmt.Printf("  %-6s %-10s %-10s\n", "query", "FullScan", "AdaptDB")
	for i := 0; i < len(adaptive); i += 10 {
		fmt.Printf("  %-6d %-10.1f %-10.1f\n", i, fullScan[i], adaptive[i])
	}
	var ta, tf float64
	for i := range adaptive {
		ta += adaptive[i]
		tf += fullScan[i]
	}
	fmt.Printf("\ntotals: FullScan %.0f sim-s, AdaptDB %.0f sim-s (%.2fx faster; paper: ≈2.1x)\n",
		tf, ta, tf/ta)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
