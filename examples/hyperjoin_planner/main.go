// This example walks through the paper's two worked hyper-join
// instances — Example 1 from the introduction and Figure 4 from §4.1 —
// and then compares every grouping algorithm in the library on a larger
// synthetic instance, illustrating why grouping choice matters and why
// the bottom-up heuristic is the production algorithm.
package main

import (
	"fmt"
	"time"

	"adaptdb/internal/hyperjoin"
	"adaptdb/internal/predicate"
	"adaptdb/internal/value"
)

func main() {
	example1()
	figure4()
	bigger()
}

// example1 reproduces Example 1: three R blocks, machine memory for two,
// and two grouping choices with costs 6 and 5.
func example1() {
	fmt.Println("== Example 1 (introduction) ==")
	v1, v2, v3 := hyperjoin.NewBitVec(3), hyperjoin.NewBitVec(3), hyperjoin.NewBitVec(3)
	v1.Set(0)
	v1.Set(1) // A1 joins B1, B2
	v2.Set(0)
	v2.Set(1)
	v2.Set(2) // A2 joins B1, B2, B3
	v3.Set(1)
	v3.Set(2) // A3 joins B2, B3
	V := []hyperjoin.BitVec{v1, v2, v3}

	bad := hyperjoin.Grouping{{0, 2}, {1}}
	good := hyperjoin.Grouping{{0, 1}, {2}}
	fmt.Printf("  group {A1,A3},{A2}: reads %d B-blocks\n", hyperjoin.Cost(bad, V))
	fmt.Printf("  group {A1,A2},{A3}: reads %d B-blocks\n", hyperjoin.Cost(good, V))
	res := hyperjoin.Exact(V, 2, hyperjoin.ExactOptions{})
	fmt.Printf("  exact optimizer picks cost %d (optimal=%v)\n\n", res.Cost, res.Optimal)
}

// figure4 rebuilds the Figure 4 instance from the blocks' join-attribute
// ranges and shows the overlap vectors and the optimal grouping.
func figure4() {
	fmt.Println("== Figure 4 (§4.1.1) ==")
	iv := func(lo, hi int64) predicate.Range {
		return predicate.Range{HasLo: true, Lo: value.NewInt(lo),
			HasHi: true, Hi: value.NewInt(hi), HiOpen: true}
	}
	r := []predicate.Range{iv(0, 100), iv(100, 200), iv(200, 300), iv(300, 400)}
	s := []predicate.Range{iv(0, 150), iv(150, 250), iv(250, 350), iv(350, 400)}
	V := hyperjoin.OverlapVectors(r, s)
	for i, v := range V {
		bits := ""
		for j := 0; j < 4; j++ {
			if v.Get(j) {
				bits += "1"
			} else {
				bits += "0"
			}
		}
		fmt.Printf("  v%d = %s\n", i+1, bits)
	}
	g := hyperjoin.BottomUp(V, 2)
	fmt.Printf("  bottom-up grouping %v costs %d (paper: optimal C(P)=5)\n\n",
		g, hyperjoin.Cost(g, V))
}

// bigger compares algorithms on a 64x32 interval instance.
func bigger() {
	fmt.Println("== 64 x 32 blocks, budget 8 ==")
	const n, m = 64, 32
	rr := make([]predicate.Range, n)
	ss := make([]predicate.Range, m)
	for i := 0; i < n; i++ {
		rr[i] = predicate.Closed(value.NewInt(int64(i*100-20)), value.NewInt(int64((i+1)*100+20)))
	}
	for j := 0; j < m; j++ {
		ss[j] = predicate.Closed(value.NewInt(int64(j*200-30)), value.NewInt(int64((j+1)*200+30)))
	}
	V := hyperjoin.OverlapVectors(rr, ss)
	algos := []struct {
		name string
		run  func() hyperjoin.Grouping
	}{
		{"first-fit", func() hyperjoin.Grouping { return hyperjoin.FirstFit(V, 8) }},
		{"bottom-up (Fig 6)", func() hyperjoin.Grouping { return hyperjoin.BottomUp(V, 8) }},
		{"greedy-seed (Fig 5)", func() hyperjoin.Grouping { return hyperjoin.GreedyBestSeed(V, 8) }},
	}
	for _, a := range algos {
		t0 := time.Now()
		g := a.run()
		fmt.Printf("  %-20s cost=%3d   %v\n", a.name, hyperjoin.Cost(g, V), time.Since(t0).Round(time.Microsecond))
	}
	ex := hyperjoin.Exact(V, 8, hyperjoin.ExactOptions{MaxSteps: 500000})
	fmt.Printf("  %-20s cost=%3d   optimal=%v\n", "exact B&B", ex.Cost, ex.Optimal)
}
