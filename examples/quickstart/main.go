// Quickstart: create tables, run predicate scans and joins, and watch
// AdaptDB adapt its partitioning to the workload — all through the
// public API.
package main

import (
	"fmt"
	"math/rand"

	"adaptdb"
)

func main() {
	db := adaptdb.Open(adaptdb.Options{
		Nodes:        10,
		RowsPerBlock: 256,
		Seed:         1,
	})

	// Load two tables with the upfront partitioner (no workload
	// knowledge yet).
	rng := rand.New(rand.NewSource(1))
	var users []adaptdb.Row
	for i := 0; i < 5000; i++ {
		users = append(users, adaptdb.Row{
			adaptdb.Int(int64(i)),
			adaptdb.Int(rng.Int63n(80)),
			adaptdb.String([]string{"us", "uk", "de", "fr"}[rng.Intn(4)]),
		})
	}
	var orders []adaptdb.Row
	for i := 0; i < 20000; i++ {
		orders = append(orders, adaptdb.Row{
			adaptdb.Int(int64(i)),
			adaptdb.Int(rng.Int63n(5000)),
			adaptdb.Float(rng.Float64() * 500),
		})
	}
	must(db.CreateTable("users", adaptdb.NewSchema(
		adaptdb.Col("id", adaptdb.KindInt),
		adaptdb.Col("age", adaptdb.KindInt),
		adaptdb.Col("country", adaptdb.KindString),
	), users))
	must(db.CreateTable("orders", adaptdb.NewSchema(
		adaptdb.Col("oid", adaptdb.KindInt),
		adaptdb.Col("uid", adaptdb.KindInt),
		adaptdb.Col("amount", adaptdb.KindFloat),
	), orders))

	// A predicate scan: the partitioning tree plus zone maps skip blocks
	// that cannot match.
	res, err := db.Query("users").
		Where("age", adaptdb.GE, adaptdb.Int(65)).
		Where("country", adaptdb.EQ, adaptdb.String("de")).
		Run()
	check(err)
	fmt.Printf("seniors in de: %d rows, %d blocks read, %.2f sim-seconds\n",
		len(res.Rows), res.Stats.BlocksScanned, res.Stats.SimSeconds)

	// Run the same join repeatedly: the first executions shuffle, and as
	// the query window fills, smooth repartitioning migrates both tables
	// onto the join attribute until the planner switches to hyper-join.
	fmt.Println("\nrunning orders ⋈ users twelve times:")
	for i := 0; i < 12; i++ {
		res, err := db.Query("orders").
			Join("users", "uid", "id").
			Where("age", adaptdb.LT, adaptdb.Int(30)).
			Run()
		check(err)
		fmt.Printf("  query %2d: %-12s %6d rows  %7.2f sim-s  (moved %d rows this query)\n",
			i, res.Stats.Strategies[0], len(res.Rows), res.Stats.SimSeconds,
			res.Stats.RepartitionedRows)
	}

	for _, name := range []string{"users", "orders"} {
		st := db.Table(name).Stats()
		fmt.Printf("\n%s: %d rows in %d blocks across %d tree(s), join attrs %v\n",
			name, st.Rows, st.Blocks, st.Trees, st.JoinAttrs)
	}
	fmt.Printf("\ncumulative simulated time: %.2f seconds\n", db.TotalSimSeconds())
}

func must(t *adaptdb.Table, err error) *adaptdb.Table {
	check(err)
	return t
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
