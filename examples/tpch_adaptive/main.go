// This example replays the paper's shifting TPC-H workload (§7.3)
// against a live AdaptDB instance and narrates what the storage manager
// does: which join strategy each query used, how much data smooth
// repartitioning moved, and how the lineitem table's partitioning trees
// evolve as the workload shifts from orderkey joins (q3/q5) through a
// pure selection phase (q6) to partkey joins (q14/q19).
package main

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/exec"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/planner"
	"adaptdb/internal/tpch"
)

func main() {
	const sf = 0.002
	model := cluster.Default()
	store := dfs.NewStore(model.Nodes, 2, 7)
	data := tpch.Generate(sf, 7)
	fmt.Printf("TPC-H micro scale %.3f: %d lineitem, %d orders, %d customer, %d part rows\n\n",
		sf, len(data.Lineitem), len(data.Orders), len(data.Customer), len(data.Part))

	// §7.3 starting state: random upfront partitioning, no join trees.
	tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: 256, Seed: 7})
	check(err)

	opt := optimizer.New(optimizer.Config{
		Mode: optimizer.ModeAdaptive, WindowSize: 10, Seed: 7,
	})
	meter := &cluster.Meter{}
	runner := planner.NewRunner(exec.New(store, meter), model)
	runner.BudgetBlocks = 8

	// A compressed shifting schedule: 12 queries per phase.
	phases := []tpch.Template{tpch.Q3, tpch.Q5, tpch.Q6, tpch.Q14, tpch.Q19}
	rng := rand.New(rand.NewSource(7))
	qnum := 0
	for _, tpl := range phases {
		fmt.Printf("--- phase %s ---\n", tpl)
		for i := 0; i < 12; i++ {
			in := tpch.NewInstance(tpl, data, rng)
			rep, err := opt.OnQuery(in.Uses(tables), meter)
			check(err)
			rows, prep, err := runner.Run(in.Plan(tables))
			check(err)
			secs := meter.Reset().SimSeconds(model)
			strategies := ""
			for _, j := range prep.Joins {
				strategies += j.Strategy + " "
			}
			if strategies == "" {
				strategies = "scan "
			}
			fmt.Printf("  q%-3d %-4s %-28s %6d rows %8.1f sim-s  moved=%d\n",
				qnum, tpl, strategies, len(rows), secs, rep.MovedRows)
			qnum++
		}
		describeLineitem(tables)
	}
}

func describeLineitem(tables *tpch.Tables) {
	t := tables.Lineitem
	fmt.Printf("  lineitem layout now: ")
	for _, i := range t.LiveTrees() {
		ti := t.Trees[i]
		attr := "selection-only"
		if ti.Tree.JoinAttr >= 0 {
			attr = t.Schema.Name(ti.Tree.JoinAttr)
		}
		fmt.Printf("[tree %d: %s, %d rows] ", i, attr, ti.Rows())
	}
	fmt.Println()
	fmt.Println()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
