// This example replays the paper's shifting TPC-H workload (§7.3)
// through an adaptive query session and narrates what the storage
// manager does: which join strategy each query used, how much data
// smooth repartitioning moved between queries, and how the lineitem
// table's partitioning trees evolve as the workload shifts from
// orderkey joins (q3/q5) through a pure selection phase (q6) to
// partkey joins (q14/q19).
//
// Everything runs through internal/session: each query is compiled to
// a pipelined operator DAG, executed on the worker pool, recorded in
// the per-table query windows, and followed by a smooth-repartitioning
// step — the full window → optimizer → migration loop in one API.
package main

import (
	"fmt"
	"math/rand"

	"adaptdb/internal/cluster"
	"adaptdb/internal/dfs"
	"adaptdb/internal/optimizer"
	"adaptdb/internal/session"
	"adaptdb/internal/tpch"
)

func main() {
	const sf = 0.002
	model := cluster.Default()
	store := dfs.NewStore(model.Nodes, 2, 7)
	data := tpch.Generate(sf, 7)
	fmt.Printf("TPC-H micro scale %.3f: %d lineitem, %d orders, %d customer, %d part rows\n\n",
		sf, len(data.Lineitem), len(data.Orders), len(data.Customer), len(data.Part))

	// §7.3 starting state: random upfront partitioning, no join trees.
	tables, err := tpch.LoadAll(store, data, tpch.LoadConfig{RowsPerBlock: 256, Seed: 7})
	check(err)

	s := session.New(store, session.Config{
		Model:        model,
		Optimizer:    optimizer.Config{Mode: optimizer.ModeAdaptive, WindowSize: 10, Seed: 7},
		BudgetBlocks: 8,
	})

	// A compressed shifting schedule: 12 queries per phase. Each query is
	// a declarative spec (named tables and columns, a join graph); the
	// session binds it, derives the optimizer touch descriptors from the
	// graph, and the planner greedily orders the joins from zone maps.
	cat := tables.Catalog()
	phases := []tpch.Template{tpch.Q3, tpch.Q5, tpch.Q6, tpch.Q14, tpch.Q19}
	rng := rand.New(rand.NewSource(7))
	for _, tpl := range phases {
		fmt.Printf("--- phase %s ---\n", tpl)
		for i := 0; i < 12; i++ {
			in := tpch.NewInstance(tpl, data, rng)
			q, err := session.FromSpec(cat, in.Spec())
			check(err)
			res, err := s.Execute(q)
			check(err)
			strategies := ""
			for _, j := range res.Report.Joins {
				strategies += j.Strategy + " "
			}
			if strategies == "" {
				strategies = "scan "
			}
			fmt.Printf("  q%-3d %-4s %-28s %6d rows %8.1f sim-s  moved=%d\n",
				res.Seq, res.Label, strategies, res.RowCount, res.SimSeconds, res.Adapt.MovedRows)
		}
		describeLineitem(tables)
	}

	// The per-operator stats of the last query show where its time went.
	fmt.Println("last query, per operator:")
	q, err := session.FromSpec(cat, tpch.NewInstance(tpch.Q19, data, rng).Spec())
	check(err)
	last, err := s.Execute(q)
	check(err)
	for _, op := range last.Ops {
		fmt.Printf("  %-32s %8d rows %6d batches %8.2f ms\n",
			op.Label, op.Rows, op.Batches, float64(op.WallNs)/1e6)
	}
}

func describeLineitem(tables *tpch.Tables) {
	t := tables.Lineitem
	fmt.Printf("  lineitem layout now: ")
	for _, i := range t.LiveTrees() {
		ti := t.Trees[i]
		attr := "selection-only"
		if ti.Tree.JoinAttr >= 0 {
			attr = t.Schema.Name(ti.Tree.JoinAttr)
		}
		fmt.Printf("[tree %d: %s, %d rows] ", i, attr, ti.Rows())
	}
	fmt.Println()
	fmt.Println()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
