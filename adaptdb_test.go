package adaptdb

import (
	"math/rand"
	"testing"
)

func usersRows(n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(rng.Int63n(80)), String([]string{"us", "uk", "de"}[rng.Intn(3)])}
	}
	return rows
}

func ordersRows(n, users int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(rng.Int63n(int64(users))), Float(rng.Float64() * 100)}
	}
	return rows
}

func openFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{RowsPerBlock: 64, Seed: 7})
	if _, err := db.CreateTable("users", NewSchema(
		Col("id", KindInt), Col("age", KindInt), Col("country", KindString),
	), usersRows(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orders", NewSchema(
		Col("oid", KindInt), Col("uid", KindInt), Col("amount", KindFloat),
	), ordersRows(3000, 1000, 2)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := Open(Options{})
	sch := NewSchema(Col("id", KindInt))
	if _, err := db.CreateTable("t", sch, []Row{{String("no")}}); err == nil {
		t.Errorf("non-conforming row accepted")
	}
	if _, err := db.CreateTable("t", sch, []Row{{Int(1)}}); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := db.CreateTable("t", sch, nil); err == nil {
		t.Errorf("duplicate table accepted")
	}
	if db.Table("t") == nil || db.Table("missing") != nil {
		t.Errorf("Table lookup wrong")
	}
}

func TestScanQuery(t *testing.T) {
	db := openFixture(t)
	res, err := db.Query("users").Where("age", GE, Int(40)).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[1].Int64() < 40 {
			t.Fatalf("predicate violated: %v", r)
		}
	}
	if res.Stats.SimSeconds <= 0 || res.Stats.BlocksScanned == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if len(res.Stats.Strategies) != 0 {
		t.Errorf("scan should report no joins")
	}
}

func TestWhereInQuery(t *testing.T) {
	db := openFixture(t)
	res, err := db.Query("users").WhereIn("country", String("us"), String("uk")).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if c := r[2].Str(); c != "us" && c != "uk" {
			t.Fatalf("IN violated: %v", r)
		}
	}
}

func TestJoinQueryCorrectAndAdaptive(t *testing.T) {
	db := openFixture(t)
	var last *Result
	for i := 0; i < 12; i++ {
		res, err := db.Query("orders").Join("users", "uid", "id").Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3000 { // every order matches exactly one user
			t.Fatalf("join produced %d rows, want 3000", len(res.Rows))
		}
		last = res
	}
	// After a steady join workload the tables converge to join-attribute
	// trees and the planner should be running hyper-joins.
	if got := last.Stats.Strategies; len(got) != 1 || got[0] != "hyper" {
		t.Errorf("converged workload should hyper-join, got %v", got)
	}
	us := db.Table("users").Stats()
	found := false
	for _, a := range us.JoinAttrs {
		if a == "id" {
			found = true
		}
	}
	if !found {
		t.Errorf("users should have adapted to a tree on id: %+v", us)
	}
	if db.TotalSimSeconds() <= 0 {
		t.Errorf("cumulative time not tracked")
	}
}

func TestMultiJoin(t *testing.T) {
	db := openFixture(t)
	// Add a countries dimension and run a 3-way join.
	if _, err := db.CreateTable("countries", NewSchema(
		Col("code", KindString), Col("region", KindString),
	), []Row{
		{String("us"), String("amer")},
		{String("uk"), String("emea")},
		{String("de"), String("emea")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("orders").
		Join("users", "uid", "id").
		Join("countries", "country", "code").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3000 {
		t.Fatalf("3-way join produced %d rows, want 3000", len(res.Rows))
	}
	// Output layout: orders(3) + users(3) + countries(2).
	if len(res.Rows[0]) != 8 {
		t.Fatalf("output arity %d, want 8", len(res.Rows[0]))
	}
	if len(res.Stats.Strategies) != 2 {
		t.Errorf("expected 2 join strategies: %v", res.Stats.Strategies)
	}
}

func TestQueryErrors(t *testing.T) {
	db := openFixture(t)
	if _, err := db.Query("missing").Run(); err == nil {
		t.Errorf("missing base table accepted")
	}
	if _, err := db.Query("users").Where("nope", EQ, Int(1)).Run(); err == nil {
		t.Errorf("missing column accepted")
	}
	if _, err := db.Query("users").Join("missing", "id", "x").Run(); err == nil {
		t.Errorf("missing join table accepted")
	}
	if _, err := db.Query("orders").Join("users", "nope", "id").Run(); err == nil {
		t.Errorf("unresolvable join column accepted")
	}
	if _, err := db.Query("orders").Join("users", "uid", "nope").Run(); err == nil {
		t.Errorf("missing right join column accepted")
	}
}

func TestWhereAfterJoinBindsToJoinedTable(t *testing.T) {
	db := openFixture(t)
	res, err := db.Query("orders").
		Join("users", "uid", "id").
		Where("age", LT, Int(30)).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[4].Int64() >= 30 { // users.age at offset 3+1
			t.Fatalf("joined-table predicate violated: %v", r)
		}
	}
}

func TestStaticModeNeverRepartitions(t *testing.T) {
	db := Open(Options{Mode: ModeStatic, RowsPerBlock: 64, Seed: 3})
	if _, err := db.CreateTable("users", NewSchema(
		Col("id", KindInt), Col("age", KindInt), Col("country", KindString),
	), usersRows(500, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orders", NewSchema(
		Col("oid", KindInt), Col("uid", KindInt), Col("amount", KindFloat),
	), ordersRows(1000, 500, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := db.Query("orders").Join("users", "uid", "id").Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.RepartitionedRows != 0 {
			t.Fatalf("static mode repartitioned %d rows", res.Stats.RepartitionedRows)
		}
	}
	if st := db.Table("users").Stats(); st.Trees != 1 || st.JoinAttrs[0] != "" {
		t.Errorf("static mode changed layout: %+v", st)
	}
}
