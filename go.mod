module adaptdb

go 1.22
